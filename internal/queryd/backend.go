// Package queryd is the query-serving subsystem: an HTTP/JSON server that
// fronts a measurement backend — a netsum.Collector aggregating many
// agents, or a standalone registry-built sketch — with the unified typed
// query plane (internal/query): batched point estimates carrying certified
// bounds, heavy-hitter top-k, and sliding-window queries, served through
// /v2/query and the per-key v1 endpoints (thin shims over the same
// Execute). Results flow through an epoch-aware cache (Cache) and state is
// made durable through checkpoint files (WriteCheckpoint) built on
// sketch.Snapshotter.
package queryd

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/epoch"
	"repro/internal/netsum"
	"repro/internal/query"
	"repro/internal/sketch"
	"repro/internal/stream"
)

// Status describes a backend for /v1/status.
type Status struct {
	Mode       string `json:"mode"` // "collector" or "standalone"
	Algo       string `json:"algo"`
	Epochal    bool   `json:"epochal"`
	Generation uint64 `json:"generation"`
	Agents     int    `json:"agents"`
	Updates    uint64 `json:"updates"`
	Queries    uint64 `json:"queries"`
}

// Backend is the query surface the server fronts: one typed batch executor
// plus the cache-contract metadata. Implementations must be safe for
// concurrent use — the HTTP server issues queries from many goroutines.
type Backend interface {
	// Execute answers one typed batch request under a single state
	// snapshot; every HTTP endpoint (v1 single-key and v2 batch alike) is
	// a shim over it. Refusals (validation, missing capabilities, unknown
	// agents) are returned as errors.
	Execute(query.Request) (query.Answer, error)
	// Generation is the sealed-set generation answers derive from; it
	// advances exactly when a window seals and stays 0 for cumulative
	// backends.
	Generation() uint64
	// Epochal reports whether answers derive only from sealed (immutable)
	// windows — the cache's signal to skip TTLs and key on Generation.
	Epochal() bool
	// Status reports identity and counters.
	Status() Status
}

// Checkpointer is implemented by backends whose state can be checkpointed
// for a warm restart.
type Checkpointer interface {
	Checkpoint(w io.Writer) error
	// CanCheckpoint reports whether Checkpoint can possibly succeed under
	// the backend's configuration, so a server asked to persist state that
	// never will (epoch mode, merging disabled, non-Snapshottable variant)
	// refuses at startup instead of logging failures forever.
	CanCheckpoint() error
}

// Ingester is implemented by backends that accept updates over HTTP
// (standalone mode; collector backends ingest through the agent protocol).
type Ingester interface {
	Ingest(items []stream.Item)
}

// CollectorBackend fronts a netsum.Collector: global answers composed
// across every agent, with certified bounds. Execute delegates straight to
// the collector's batch core — the same one the wire protocol's exec
// frames use.
type CollectorBackend struct {
	C *netsum.Collector
	// Algo names the collector's sketch variant for Status and checkpoint
	// headers.
	Algo string
}

// Execute answers the typed batch request from the collector's global view.
func (b CollectorBackend) Execute(req query.Request) (query.Answer, error) {
	return b.C.Execute(req)
}

// Generation is the collector-wide seal count.
func (b CollectorBackend) Generation() uint64 { return b.C.Generation() }

// Epochal reports whether the collector measures in sealed windows.
func (b CollectorBackend) Epochal() bool { return b.C.Epochal() }

// Checkpoint snapshots the merged global view.
func (b CollectorBackend) Checkpoint(w io.Writer) error { return b.C.SnapshotGlobal(w) }

// CanCheckpoint reports whether the collector maintains a snapshottable
// merged view.
func (b CollectorBackend) CanCheckpoint() error { return b.C.CanSnapshotGlobal() }

// Status reports collector identity and ingest counters.
func (b CollectorBackend) Status() Status {
	agents, updates, queries := b.C.Stats()
	return Status{
		Mode:       "collector",
		Algo:       b.Algo,
		Epochal:    b.C.Epochal(),
		Generation: b.C.Generation(),
		Agents:     agents,
		Updates:    updates,
		Queries:    queries,
	}
}

// SketchBackend serves a standalone registry-built sketch — cumulative, or
// wrapped in an epoch ring when built with an epoch length. Ingest arrives
// over HTTP (Ingest); queries and ingest may run concurrently.
type SketchBackend struct {
	algo string

	// Cumulative mode: sk under mu (writers exclusive, readers shared) —
	// except when selfSynced: sharded sketches lock per shard internally,
	// and routing everything through one outer mutex would serialize the
	// concurrent ingest that Spec.Shards exists to provide.
	mu         sync.RWMutex
	sk         sketch.Sketch
	selfSynced bool

	// Epoch mode: the ring locks internally.
	ring *epoch.Ring

	updates atomic.Uint64
	queries atomic.Uint64
}

// NewSketchBackend builds a standalone backend for the named registry
// variant. epochLen > 0 selects epoch mode: a ring rotating every epochLen
// retaining windows sealed epochs (≤ 0 windows means the default).
func NewSketchBackend(algo string, spec sketch.Spec, epochLen time.Duration, windows int, clock epoch.Clock) (*SketchBackend, error) {
	entry, ok := sketch.Lookup(algo)
	if !ok {
		return nil, fmt.Errorf("queryd: unknown algorithm %q", algo)
	}
	b := &SketchBackend{algo: algo}
	if epochLen > 0 {
		b.ring = epoch.NewRing(entry.Factory(spec), spec.MemoryBytes, epochLen, windows, clock)
		return b, nil
	}
	b.sk = entry.Build(spec)
	b.selfSynced = spec.Shards > 1
	return b, nil
}

// Restore warm-starts a cumulative backend from a snapshot (epoch-mode
// state ages out instead of being checkpointed).
func (b *SketchBackend) Restore(r io.Reader) error {
	if b.ring != nil {
		return errors.New("queryd: warm restart is cumulative-mode only (epoch-ring state ages out instead)")
	}
	sn, ok := b.sk.(sketch.Snapshotter)
	if !ok {
		return fmt.Errorf("queryd: %q does not support Restore", b.algo)
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return sn.Restore(r)
}

// Ingest lands a batch of updates.
func (b *SketchBackend) Ingest(items []stream.Item) {
	switch {
	case b.ring != nil:
		b.ring.InsertBatch(items)
	case b.selfSynced:
		sketch.InsertBatch(b.sk, items)
	default:
		b.mu.Lock()
		sketch.InsertBatch(b.sk, items)
		b.mu.Unlock()
	}
	b.updates.Add(uint64(len(items)))
}

// Execute answers the typed batch request. Epoch mode delegates to the
// ring's Execute (one sealed-set snapshot for the whole batch); cumulative
// mode answers every key under a single read-lock acquisition through the
// sketch's native batch path, so a 256-key batch costs one lock round-trip
// (or one per shard, self-synced) instead of 256. Window requests against
// a cumulative backend degenerate to Point with Coverage 0, mirroring the
// collector.
func (b *SketchBackend) Execute(req query.Request) (query.Answer, error) {
	if err := req.Validate(); err != nil {
		return query.Answer{}, err
	}
	b.queries.Add(uint64(1))
	if b.ring != nil {
		return b.ring.Execute(req)
	}
	if req.Agent != 0 {
		return query.Answer{}, errors.New("queryd: standalone backends have no agents to scope to")
	}
	ans := query.Answer{Source: "sketch"}
	if req.Kind == query.TopK {
		return b.executeTopK(req, ans)
	}
	_, bounded := b.sk.(sketch.ErrorBounded)
	est := make([]uint64, len(req.Keys))
	var mpe []uint64
	if bounded {
		mpe = make([]uint64, len(req.Keys))
	}
	if !b.selfSynced {
		b.mu.RLock()
	}
	sketch.QueryBatch(b.sk, req.Keys, est, mpe)
	if !b.selfSynced {
		b.mu.RUnlock()
	}
	ans.Certified = bounded
	ans.PerKey = query.EstimatesFrom(req.Keys, est, mpe)
	return ans, nil
}

// executeTopK enumerates tracked heavy hitters, heaviest first, with each
// key's interval read under the same lock hold.
func (b *SketchBackend) executeTopK(req query.Request, ans query.Answer) (query.Answer, error) {
	hh, ok := b.sk.(sketch.HeavyHitterReporter)
	if !ok {
		return query.Answer{}, fmt.Errorf("queryd: %q does not report tracked keys", b.algo)
	}
	_, bounded := b.sk.(sketch.ErrorBounded)
	if !b.selfSynced {
		b.mu.RLock()
		defer b.mu.RUnlock()
	}
	kvs := query.TopKOf(hh.Tracked(), req.K)
	keys := make([]uint64, len(kvs))
	for i, kv := range kvs {
		keys[i] = kv.Key
	}
	est := make([]uint64, len(keys))
	var mpe []uint64
	if bounded {
		mpe = make([]uint64, len(keys))
	}
	sketch.QueryBatch(b.sk, keys, est, mpe)
	ans.Certified = bounded
	ans.PerKey = query.EstimatesFrom(keys, est, mpe)
	return ans, nil
}

// Generation is the ring's seal count (0 in cumulative mode).
func (b *SketchBackend) Generation() uint64 {
	if b.ring == nil {
		return 0
	}
	return b.ring.Generation()
}

// Epochal reports epoch mode.
func (b *SketchBackend) Epochal() bool { return b.ring != nil }

// Checkpoint snapshots the cumulative sketch. Readers may run concurrently
// (a snapshot is a read); ingest is excluded for the serialization only —
// the state is captured into memory under the lock and written to w after
// releasing it, so ingest never stalls on the destination's I/O.
func (b *SketchBackend) Checkpoint(w io.Writer) error {
	if err := b.CanCheckpoint(); err != nil {
		return err
	}
	sn := b.sk.(sketch.Snapshotter)
	var buf bytes.Buffer
	if b.selfSynced {
		// Sharded snapshots lock shard-by-shard themselves.
		if err := sn.Snapshot(&buf); err != nil {
			return err
		}
	} else {
		b.mu.RLock()
		err := sn.Snapshot(&buf)
		b.mu.RUnlock()
		if err != nil {
			return err
		}
	}
	_, err := w.Write(buf.Bytes())
	return err
}

// CanCheckpoint reports whether the backend is a cumulative snapshottable
// sketch.
func (b *SketchBackend) CanCheckpoint() error {
	if b.ring != nil {
		return errors.New("queryd: checkpointing is cumulative-mode only (epoch-ring state ages out instead)")
	}
	if _, ok := b.sk.(sketch.Snapshotter); !ok {
		return fmt.Errorf("queryd: %q does not support Snapshot", b.algo)
	}
	return nil
}

// Status reports identity and counters.
func (b *SketchBackend) Status() Status {
	return Status{
		Mode:       "standalone",
		Algo:       b.algo,
		Epochal:    b.Epochal(),
		Generation: b.Generation(),
		Updates:    b.updates.Load(),
		Queries:    b.queries.Load(),
	}
}
