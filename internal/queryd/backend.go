// Package queryd is the query-serving subsystem: an HTTP/JSON server that
// fronts a measurement backend — a netsum.Collector aggregating many
// agents, or a standalone registry-built sketch — with the unified typed
// query plane (internal/query): batched point estimates carrying certified
// bounds, heavy-hitter top-k, and sliding-window queries, served through
// /v2/query and the per-key v1 endpoints (thin shims over the same
// Execute). Results flow through an epoch-aware cache (Cache) and state is
// made durable through checkpoint files (WriteCheckpoint) built on
// sketch.Snapshotter.
package queryd

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/epoch"
	"repro/internal/ingest"
	"repro/internal/netsum"
	"repro/internal/query"
	"repro/internal/sketch"
	"repro/internal/telemetry"
	"repro/internal/wal"
)

// Status describes a backend for /v1/status.
type Status struct {
	Mode       string `json:"mode"` // "collector" or "standalone"
	Algo       string `json:"algo"`
	Epochal    bool   `json:"epochal"`
	Generation uint64 `json:"generation"`
	Agents     int    `json:"agents"`
	Updates    uint64 `json:"updates"`
	Queries    uint64 `json:"queries"`
	// Ingest reports the write pipeline's counters when the backend ingests
	// through one (absent for synchronous backends).
	Ingest *ingest.Stats `json:"ingest,omitempty"`
	// WAL reports write-ahead-log counters when durable ingest is enabled
	// (absent otherwise).
	WAL *wal.Stats `json:"wal,omitempty"`
}

// Backend is the query surface the server fronts: one typed batch executor
// plus the cache-contract metadata. Implementations must be safe for
// concurrent use — the HTTP server issues queries from many goroutines.
type Backend interface {
	// Execute answers one typed batch request under a single state
	// snapshot; every HTTP endpoint (v1 single-key and v2 batch alike) is
	// a shim over it. Refusals (validation, missing capabilities, unknown
	// agents) are returned as errors.
	Execute(query.Request) (query.Answer, error)
	// Generation is the sealed-set generation answers derive from; it
	// advances exactly when a window seals and stays 0 for cumulative
	// backends.
	Generation() uint64
	// Epochal reports whether answers derive only from sealed (immutable)
	// windows — the cache's signal to skip TTLs and key on Generation.
	Epochal() bool
	// Status reports identity and counters.
	Status() Status
}

// Checkpointer is implemented by backends whose state can be checkpointed
// for a warm restart.
type Checkpointer interface {
	Checkpoint(w io.Writer) error
	// CanCheckpoint reports whether Checkpoint can possibly succeed under
	// the backend's configuration, so a server asked to persist state that
	// never will (epoch mode, merging disabled, non-Snapshottable variant)
	// refuses at startup instead of logging failures forever.
	CanCheckpoint() error
}

// Ingester is implemented by backends that accept updates over HTTP
// (standalone mode; collector backends ingest through the agent protocol).
// The Ack reports what actually happened — how many items were applied (or
// enqueued, pipelined), how many a full queue refused — so HTTP clients are
// never told 200 while their items silently vanish.
type Ingester interface {
	Ingest(b ingest.Batch) ingest.Ack
}

// CollectorBackend fronts a netsum.Collector: global answers composed
// across every agent, with certified bounds. Execute delegates straight to
// the collector's batch core — the same one the wire protocol's exec
// frames use.
type CollectorBackend struct {
	C *netsum.Collector
	// Algo names the collector's sketch variant for Status and checkpoint
	// headers.
	Algo string
}

// Execute answers the typed batch request from the collector's global view.
func (b CollectorBackend) Execute(req query.Request) (query.Answer, error) {
	return b.C.Execute(req)
}

// Generation is the collector-wide seal count.
func (b CollectorBackend) Generation() uint64 { return b.C.Generation() }

// Epochal reports whether the collector measures in sealed windows.
func (b CollectorBackend) Epochal() bool { return b.C.Epochal() }

// Checkpoint snapshots the merged global view.
func (b CollectorBackend) Checkpoint(w io.Writer) error { return b.C.SnapshotGlobal(w) }

// CanCheckpoint reports whether the collector maintains a snapshottable
// merged view.
func (b CollectorBackend) CanCheckpoint() error { return b.C.CanSnapshotGlobal() }

// CutLSN reports the WAL position the collector's most recent snapshot cut
// covered (0 with no WAL).
func (b CollectorBackend) CutLSN() uint64 { return b.C.WALCutLSN() }

// CheckpointCommitted advances the collector's WAL watermark through the
// last cut, now that the checkpoint file holding it is durable.
func (b CollectorBackend) CheckpointCommitted() error { return b.C.WALCheckpointCommitted() }

// RegisterMetrics delegates to the collector, which registers its own
// netsum_* series plus its ingest pipeline's and (when durable) its WAL's.
func (b CollectorBackend) RegisterMetrics(reg *telemetry.Registry) { b.C.RegisterMetrics(reg) }

// Status reports collector identity and ingest counters.
func (b CollectorBackend) Status() Status {
	agents, updates, queries := b.C.Stats()
	ist := b.C.IngestStats()
	return Status{
		Mode:       "collector",
		Algo:       b.Algo,
		Epochal:    b.C.Epochal(),
		Generation: b.C.Generation(),
		Agents:     agents,
		Updates:    updates,
		Queries:    queries,
		Ingest:     &ist,
		WAL:        b.C.WALStats(),
	}
}

// SketchBackend serves a standalone registry-built sketch — cumulative, or
// wrapped in an epoch ring when built with an epoch length. Ingest arrives
// over HTTP (Ingest); queries and ingest may run concurrently. With
// SketchBackendConfig.Ingest set, writes flow through an async ingest
// pipeline (workers accumulate private deltas, one fold per flush) and
// query paths drain it first, so acked writes are always visible.
type SketchBackend struct {
	algo string

	// Cumulative mode: sk under mu (writers exclusive, readers shared) —
	// except when selfSynced: sharded sketches lock per shard internally,
	// and routing everything through one outer mutex would serialize the
	// concurrent ingest that Spec.Shards exists to provide.
	mu         sync.RWMutex
	sk         sketch.Sketch
	selfSynced bool

	// Epoch mode: the ring locks internally.
	ring *epoch.Ring

	// pipe is the optional async write plane; nil means synchronous ingest.
	pipe *ingest.Pipeline

	// wl is the optional write-ahead log (AttachWAL); every Ingest appends
	// to it before touching the pipeline, so an acked batch is on disk
	// before it is in memory. walMu orders appends against checkpoint cuts:
	// ingest holds it shared around the (append, submit) pair, and the
	// checkpoint cut holds it exclusive around (drain, serialize, capture
	// LastLSN) — so every record at or below the cut LSN is in the snapshot
	// and every record above it is not. cutLSN is the last cut, the point
	// the log can be truncated through once that checkpoint file is durable.
	wl     *wal.Log
	walMu  sync.RWMutex
	cutLSN atomic.Uint64

	// updates/queries double as the backend's Prometheus instruments
	// (RegisterMetrics) — the same atomic words Status reads.
	updates telemetry.Counter
	queries telemetry.Counter
}

// SketchBackendConfig names everything a standalone backend is built from.
type SketchBackendConfig struct {
	// Algo is the registered variant; Spec sizes it.
	Algo string
	Spec sketch.Spec
	// Epoch > 0 selects epoch mode: a ring rotating every Epoch, retaining
	// Windows sealed epochs (≤ 0 means the default). Clock overrides time
	// (tests).
	Epoch   time.Duration
	Windows int
	Clock   epoch.Clock
	// Ingest, when non-nil, routes writes through an async pipeline with
	// this tuning. Mergeable variants get delta folding (flat and ring
	// targets alike); non-Mergeable ones get async application under the
	// backend's write lock — still off the producer's critical path.
	Ingest *ingest.Tuning
}

// NewSketchBackend builds a standalone backend for the named registry
// variant with synchronous ingest. epochLen > 0 selects epoch mode: a ring
// rotating every epochLen retaining windows sealed epochs (≤ 0 windows
// means the default).
func NewSketchBackend(algo string, spec sketch.Spec, epochLen time.Duration, windows int, clock epoch.Clock) (*SketchBackend, error) {
	return NewSketchBackendFrom(SketchBackendConfig{
		Algo: algo, Spec: spec, Epoch: epochLen, Windows: windows, Clock: clock,
	})
}

// NewSketchBackendFrom builds a standalone backend from the full config.
func NewSketchBackendFrom(cfg SketchBackendConfig) (*SketchBackend, error) {
	entry, ok := sketch.Lookup(cfg.Algo)
	if !ok {
		return nil, fmt.Errorf("queryd: unknown algorithm %q", cfg.Algo)
	}
	b := &SketchBackend{algo: cfg.Algo}
	if cfg.Epoch > 0 {
		b.ring = epoch.NewRing(entry.Factory(cfg.Spec), cfg.Spec.MemoryBytes, cfg.Epoch, cfg.Windows, cfg.Clock)
	} else {
		b.sk = entry.Build(cfg.Spec)
		b.selfSynced = cfg.Spec.Shards > 1
	}
	if cfg.Ingest == nil {
		return b, nil
	}
	mergeable := entry.Caps.Has(sketch.CapMergeable)
	newDelta := func() sketch.Sketch { return entry.Build(cfg.Spec) }
	switch {
	case b.ring != nil && mergeable:
		// Ring target: folds land in the active window, and the ring drains
		// the pipeline before sealing an overdue epoch, so sealed windows
		// are exact.
		p, err := ingest.ForRing(b.ring, newDelta, *cfg.Ingest)
		if err != nil {
			return nil, err
		}
		b.pipe = p
	case b.ring != nil:
		// Non-Mergeable ring: apply batches asynchronously; the ring locks
		// internally and rotates on the insert path, as synchronous ingest
		// would.
		b.pipe = ingest.New(ingest.Options{Tuning: *cfg.Ingest, Apply: func(batch ingest.Batch) error {
			b.ring.InsertBatch(batch.Items)
			return nil
		}})
	case mergeable:
		b.pipe = ingest.New(ingest.Options{Tuning: *cfg.Ingest, NewDelta: newDelta, Fold: b.fold})
	default:
		b.pipe = ingest.New(ingest.Options{Tuning: *cfg.Ingest, Apply: func(batch ingest.Batch) error {
			b.mu.Lock()
			sketch.InsertBatch(b.sk, batch.Items)
			b.mu.Unlock()
			return nil
		}})
	}
	return b, nil
}

// fold merges one worker's delta into the cumulative sketch — one short
// write-lock hold per flush. Self-synchronizing (sharded) sketches lock
// shard pairs inside Merge; flat ones take the backend's write lock.
func (b *SketchBackend) fold(delta sketch.Sketch) error {
	if b.selfSynced {
		return sketch.Merge(b.sk, delta)
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return sketch.Merge(b.sk, delta)
}

// ErrLostWrites marks the unrecoverable backend state where acked items
// were lost (a failed fold discards its delta). HTTP surfaces map it to a
// hard 500 — retrying, here or on another replica, cannot restore the lost
// writes.
var ErrLostWrites = errors.New("queryd: ingest pipeline lost acked items")

// drain is the read-your-writes barrier of pipelined backends; a no-op for
// synchronous ones. A pipeline error means acked items were lost, so
// readers must refuse to answer rather than serve certified intervals that
// provably miss traffic.
func (b *SketchBackend) drain() error {
	if b.pipe == nil {
		return nil
	}
	if err := b.pipe.Drain(); err != nil {
		return fmt.Errorf("%w: %v", ErrLostWrites, err)
	}
	return nil
}

// Close stops the ingest pipeline's workers, folding everything accepted.
// Synchronous backends close trivially.
func (b *SketchBackend) Close() error {
	if b.pipe == nil {
		return nil
	}
	return b.pipe.Close()
}

// Restore warm-starts a cumulative backend from a snapshot (epoch-mode
// state ages out instead of being checkpointed).
func (b *SketchBackend) Restore(r io.Reader) error {
	if b.ring != nil {
		return errors.New("queryd: warm restart is cumulative-mode only (epoch-ring state ages out instead)")
	}
	sn, ok := b.sk.(sketch.Snapshotter)
	if !ok {
		return fmt.Errorf("queryd: %q does not support Restore", b.algo)
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return sn.Restore(r)
}

// Ingest lands a typed batch: enqueued on the pipeline when one is
// configured (the Ack then reports drops under the Drop policy), applied
// synchronously otherwise. The Ack's generation is stamped from the
// backend, so epoch-mode clients can key caches off their own writes.
//
// With a WAL attached, the batch is appended (and, per the fsync policy,
// made durable) before it enters the pipeline — the ack promises the write
// survives a crash. A failed append refuses the whole batch (Dropped) rather
// than acking a write that would vanish on restart; the log's sticky failure
// state surfaces in Status.
func (b *SketchBackend) Ingest(batch ingest.Batch) ingest.Ack {
	if b.wl == nil {
		return b.submit(batch)
	}
	b.walMu.RLock()
	defer b.walMu.RUnlock()
	if _, err := b.wl.Append(batch); err != nil {
		return ingest.Ack{Dropped: len(batch.Items), Generation: b.peekGeneration()}
	}
	return b.submit(batch)
}

// submit is Ingest minus durability: the in-memory landing path, shared by
// live traffic and WAL replay.
func (b *SketchBackend) submit(batch ingest.Batch) ingest.Ack {
	var ack ingest.Ack
	if b.pipe != nil {
		ack = b.pipe.Submit(batch)
		b.updates.Add(uint64(ack.Accepted))
		ack.Generation = b.peekGeneration()
		return ack
	}
	switch {
	case b.ring != nil:
		b.ring.InsertBatch(batch.Items)
	case b.selfSynced:
		sketch.InsertBatch(b.sk, batch.Items)
	default:
		b.mu.Lock()
		sketch.InsertBatch(b.sk, batch.Items)
		b.mu.Unlock()
	}
	b.updates.Add(uint64(len(batch.Items)))
	return ingest.Ack{Accepted: len(batch.Items), Generation: b.peekGeneration()}
}

// peekGeneration labels Acks without driving rotation: Generation() pokes
// the ring, which on a pipelined epoch backend would drain the whole
// pipeline inside the write handler — the producer stall the async plane
// exists to remove.
func (b *SketchBackend) peekGeneration() uint64 {
	if b.ring == nil {
		return 0
	}
	return b.ring.PeekGeneration()
}

// Execute answers the typed batch request. Epoch mode delegates to the
// ring's Execute (one sealed-set snapshot for the whole batch); cumulative
// mode answers every key under a single read-lock acquisition through the
// sketch's native batch path, so a 256-key batch costs one lock round-trip
// (or one per shard, self-synced) instead of 256. Window requests against
// a cumulative backend degenerate to Point with Coverage 0, mirroring the
// collector.
func (b *SketchBackend) Execute(req query.Request) (query.Answer, error) {
	if err := req.Validate(); err != nil {
		return query.Answer{}, err
	}
	if err := b.drain(); err != nil {
		return query.Answer{}, err
	}
	b.queries.Inc()
	if b.ring != nil {
		return b.ring.Execute(req)
	}
	if req.Agent != 0 {
		return query.Answer{}, errors.New("queryd: standalone backends have no agents to scope to")
	}
	ans := query.Answer{Source: "sketch"}
	if req.Kind == query.TopK {
		return b.executeTopK(req, ans)
	}
	_, bounded := b.sk.(sketch.ErrorBounded)
	est := make([]uint64, len(req.Keys))
	var mpe []uint64
	if bounded {
		mpe = make([]uint64, len(req.Keys))
	}
	if !b.selfSynced {
		b.mu.RLock()
	}
	sketch.QueryBatch(b.sk, req.Keys, est, mpe)
	if !b.selfSynced {
		b.mu.RUnlock()
	}
	ans.Certified = bounded
	ans.PerKey = query.EstimatesFrom(req.Keys, est, mpe)
	return ans, nil
}

// executeTopK enumerates tracked heavy hitters, heaviest first, with each
// key's interval read under the same lock hold.
func (b *SketchBackend) executeTopK(req query.Request, ans query.Answer) (query.Answer, error) {
	hh, ok := b.sk.(sketch.HeavyHitterReporter)
	if !ok {
		return query.Answer{}, fmt.Errorf("queryd: %q does not report tracked keys", b.algo)
	}
	_, bounded := b.sk.(sketch.ErrorBounded)
	if !b.selfSynced {
		b.mu.RLock()
		defer b.mu.RUnlock()
	}
	kvs := query.TopKOf(hh.Tracked(), req.K)
	keys := make([]uint64, len(kvs))
	for i, kv := range kvs {
		keys[i] = kv.Key
	}
	est := make([]uint64, len(keys))
	var mpe []uint64
	if bounded {
		mpe = make([]uint64, len(keys))
	}
	sketch.QueryBatch(b.sk, keys, est, mpe)
	ans.Certified = bounded
	ans.PerKey = query.EstimatesFrom(keys, est, mpe)
	return ans, nil
}

// Generation is the ring's seal count (0 in cumulative mode).
func (b *SketchBackend) Generation() uint64 {
	if b.ring == nil {
		return 0
	}
	return b.ring.Generation()
}

// Epochal reports epoch mode.
func (b *SketchBackend) Epochal() bool { return b.ring != nil }

// AttachWAL wires a write-ahead log into the backend: every record past
// ckptLSN (the restored checkpoint's cut) and the log's own watermark is
// replayed through the same in-memory path live traffic takes, drained to
// visibility, and only then does the log start intercepting Ingest — no
// appends happen during replay. Cumulative mode only: replaying old records
// into an epoch ring would resurrect expired traffic into the live window.
func (b *SketchBackend) AttachWAL(l *wal.Log, ckptLSN uint64) error {
	if b.ring != nil {
		return errors.New("queryd: WAL-backed ingest is cumulative-mode only (epoch-ring state ages out instead)")
	}
	if b.wl != nil {
		return errors.New("queryd: WAL already attached")
	}
	if b.pipe != nil && b.pipe.Policy() == ingest.Drop {
		// Drop would let a momentarily full queue refuse a batch already
		// durable on disk — live state says dropped, the log resurrects it
		// on replay, and the same race makes replay itself fail on a healthy
		// log. Block is the only policy whose acks the WAL can honestly
		// extend across a crash.
		return errors.New("queryd: WAL-backed ingest requires the block ingest policy (drop could refuse a durable batch live, then resurrect it on replay)")
	}
	after := max(ckptLSN, l.Watermark())
	if _, err := l.Replay(after, func(batch ingest.Batch, lsn uint64) error {
		// The pipeline (if any) is Block, so Dropped > 0 means it failed or
		// closed — recovery must not paper over that.
		if ack := b.submit(batch); ack.Dropped > 0 {
			return fmt.Errorf("queryd: replaying wal record %d: %d items refused (pipeline failed)", lsn, ack.Dropped)
		}
		return nil
	}); err != nil {
		return err
	}
	if err := b.drain(); err != nil {
		return err
	}
	b.cutLSN.Store(after)
	b.wl = l
	return nil
}

// CutLSN reports the WAL position the most recent checkpoint cut covered.
func (b *SketchBackend) CutLSN() uint64 { return b.cutLSN.Load() }

// CheckpointCommitted tells the backend its latest Checkpoint is durable on
// disk: the WAL's records through the cut are now redundant, so the
// watermark advances and fully covered segments are deleted.
func (b *SketchBackend) CheckpointCommitted() error {
	if b.wl == nil {
		return nil
	}
	return b.wl.TruncateThrough(b.cutLSN.Load())
}

// Checkpoint snapshots the cumulative sketch. Readers may run concurrently
// (a snapshot is a read); ingest is excluded for the serialization only —
// the state is captured into memory under the lock and written to w after
// releasing it, so ingest never stalls on the destination's I/O. With a WAL
// attached, the (drain, serialize, capture LastLSN) cut runs under the
// exclusive side of walMu so no (append, submit) pair straddles it.
func (b *SketchBackend) Checkpoint(w io.Writer) error {
	if err := b.CanCheckpoint(); err != nil {
		return err
	}
	sn := b.sk.(sketch.Snapshotter)
	if b.wl != nil {
		b.walMu.Lock()
	}
	buf, err := b.checkpointCut(sn)
	if b.wl != nil {
		if err == nil {
			b.cutLSN.Store(b.wl.LastLSN())
		}
		b.walMu.Unlock()
	}
	if err != nil {
		return err
	}
	_, err = w.Write(buf.Bytes())
	return err
}

// checkpointCut drains pending ingest and serializes the sketch into a
// buffer; the caller handles WAL cut ordering around it.
func (b *SketchBackend) checkpointCut(sn sketch.Snapshotter) (*bytes.Buffer, error) {
	if err := b.drain(); err != nil {
		return nil, err
	}
	var buf bytes.Buffer
	if b.selfSynced {
		// Sharded snapshots lock shard-by-shard themselves.
		if err := sn.Snapshot(&buf); err != nil {
			return nil, err
		}
	} else {
		b.mu.RLock()
		err := sn.Snapshot(&buf)
		b.mu.RUnlock()
		if err != nil {
			return nil, err
		}
	}
	return &buf, nil
}

// CanCheckpoint reports whether the backend is a cumulative snapshottable
// sketch.
func (b *SketchBackend) CanCheckpoint() error {
	if b.ring != nil {
		return errors.New("queryd: checkpointing is cumulative-mode only (epoch-ring state ages out instead)")
	}
	if _, ok := b.sk.(sketch.Snapshotter); !ok {
		return fmt.Errorf("queryd: %q does not support Snapshot", b.algo)
	}
	return nil
}

// RegisterMetrics exposes the backend's instruments on reg: its own
// update/query counters plus, when configured, its ingest pipeline's, its
// WAL's, and its epoch ring's. Call it after the backend is fully wired
// (in particular after AttachWAL) — queryd.New does, at server build time.
func (b *SketchBackend) RegisterMetrics(reg *telemetry.Registry) {
	reg.RegisterCounter("queryd_backend_updates_total", "Items accepted by Ingest.", nil, &b.updates)
	reg.RegisterCounter("queryd_backend_queries_total", "Typed batch requests executed.", nil, &b.queries)
	if b.pipe != nil {
		b.pipe.RegisterMetrics(reg)
	}
	if b.wl != nil {
		b.wl.RegisterMetrics(reg)
	}
	if b.ring != nil {
		b.ring.RegisterMetrics(reg)
	}
}

// Status reports identity and counters.
func (b *SketchBackend) Status() Status {
	st := Status{
		Mode:       "standalone",
		Algo:       b.algo,
		Epochal:    b.Epochal(),
		Generation: b.Generation(),
		Updates:    b.updates.Value(),
		Queries:    b.queries.Value(),
	}
	if b.pipe != nil {
		ist := b.pipe.Stats()
		st.Ingest = &ist
	}
	if b.wl != nil {
		ws := b.wl.Stats()
		st.WAL = &ws
	}
	return st
}
