package queryd_test

import (
	"bufio"
	"fmt"
	"net/http/httptest"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"testing"

	"repro/internal/ingest"
	"repro/internal/query"
	"repro/internal/queryd"
	"repro/internal/sketch"
	"repro/internal/stream"
	"repro/internal/wal"
)

// TestMain lets TestKillRecoveryReadYourAckedWrites re-exec this test binary
// as its victim: with the env var set, the process becomes a WAL-backed
// ingest server that prints an ack line per durable batch until killed.
func TestMain(m *testing.M) {
	if dir := os.Getenv("QUERYD_WAL_KILL_CHILD"); dir != "" {
		runKillChild(dir)
		return
	}
	os.Exit(m.Run())
}

func walTestSpec() sketch.Spec {
	return sketch.Spec{MemoryBytes: 256 << 10, Lambda: 25, Seed: 1, Emergency: true}
}

// newWALBackend builds a pipelined (Block policy) backend with a WAL rooted
// at dir attached, replaying past ckptLSN first.
func newWALBackend(t *testing.T, dir string, ckptLSN uint64, opts wal.Options) (*queryd.SketchBackend, *wal.Log) {
	t.Helper()
	opts.Dir = dir
	l, err := wal.Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := queryd.NewSketchBackendFrom(queryd.SketchBackendConfig{
		Algo: "Ours", Spec: walTestSpec(),
		Ingest: &ingest.Tuning{Policy: ingest.Block},
	})
	if err != nil {
		l.Close()
		t.Fatal(err)
	}
	if err := b.AttachWAL(l, ckptLSN); err != nil {
		l.Close()
		t.Fatal(err)
	}
	t.Cleanup(func() { b.Close(); l.Close() })
	return b, l
}

func TestAttachWALRefusesDropPolicy(t *testing.T) {
	// Drop could refuse a batch the log already made durable — live state
	// would say dropped while replay resurrects it — so attaching a WAL to a
	// Drop pipeline is rejected, like WAL + epoch mode.
	l, err := wal.Open(wal.Options{Dir: t.TempDir(), Fsync: wal.FsyncPolicy{Mode: wal.SyncOff}})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	b, err := queryd.NewSketchBackendFrom(queryd.SketchBackendConfig{
		Algo: "Ours", Spec: walTestSpec(),
		Ingest: &ingest.Tuning{Policy: ingest.Drop},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	if err := b.AttachWAL(l, 0); err == nil {
		t.Fatal("AttachWAL accepted a Drop-policy pipeline")
	}
}

// assertContains asserts key's certified interval contains truth.
func assertContains(t *testing.T, b queryd.Backend, key, truth uint64) {
	t.Helper()
	ans, err := b.Execute(query.Request{Kind: query.Point, Keys: []uint64{key}})
	if err != nil {
		t.Fatalf("point query for %d: %v", key, err)
	}
	e := ans.PerKey[0]
	if !ans.Certified || truth < e.Lower || truth > e.Upper {
		t.Errorf("key %d: certified=%v interval [%d,%d] misses truth %d",
			key, ans.Certified, e.Lower, e.Upper, truth)
	}
}

func TestWALRecoveryWithoutCheckpoint(t *testing.T) {
	// Acked writes survive a restart with no checkpoint at all: the whole
	// log replays through the same ingest path.
	dir := t.TempDir()
	b1, _ := newWALBackend(t, dir, 0, wal.Options{Fsync: wal.FsyncPolicy{Mode: wal.SyncEachBatch}})
	truth := map[uint64]uint64{}
	for i := uint64(1); i <= 200; i++ {
		ack := b1.Ingest(ingest.Batch{Items: []stream.Item{{Key: i, Value: i}}, Source: i % 4})
		if ack.Dropped != 0 {
			t.Fatalf("ingest %d dropped %d items", i, ack.Dropped)
		}
		truth[i] = i
	}
	// "Crash": abandon b1 without checkpointing and rebuild purely from the
	// log. (The log is closed so the new Open owns the tail cleanly; with
	// per-batch fsync every acked record was already durable before Close.)
	b1.Close()

	b2, l2 := newWALBackend(t, dir, 0, wal.Options{Fsync: wal.FsyncPolicy{Mode: wal.SyncEachBatch}})
	if got := l2.Stats().Replayed; got != 200 {
		t.Fatalf("replayed %d records, want 200", got)
	}
	for _, key := range []uint64{1, 77, 200} {
		assertContains(t, b2, key, truth[key])
	}
}

func TestCheckpointCutTruncatesWAL(t *testing.T) {
	// The incremental-checkpoint loop: log grows, checkpoint lands, log
	// truncates — and recovery = checkpoint + remaining tail, exactly once
	// each.
	dir := t.TempDir()
	ckpt := filepath.Join(t.TempDir(), "state.ckpt")
	// Tiny segments so truncation has something to delete.
	opts := wal.Options{SegmentBytes: 4096, Fsync: wal.FsyncPolicy{Mode: wal.SyncEachBatch}}
	b1, l1 := newWALBackend(t, dir, 0, opts)
	s1, err := queryd.New(b1, queryd.Config{Algo: "Ours", Spec: walTestSpec(), CheckpointPath: ckpt})
	if err != nil {
		t.Fatal(err)
	}
	truth := map[uint64]uint64{}
	add := func(lo, hi uint64) {
		for i := lo; i <= hi; i++ {
			if ack := b1.Ingest(ingest.Batch{Items: []stream.Item{{Key: i, Value: i}}}); ack.Dropped != 0 {
				t.Fatalf("ingest %d dropped %d items", i, ack.Dropped)
			}
			truth[i] = i
		}
	}
	add(1, 300)
	segsBefore := l1.Stats().Segments
	if err := s1.CheckpointNow(); err != nil {
		t.Fatal(err)
	}
	st := l1.Stats()
	if st.Watermark != 300 {
		t.Fatalf("watermark after checkpoint = %d, want 300", st.Watermark)
	}
	if segsBefore > 1 && st.Segments >= segsBefore {
		t.Fatalf("checkpoint kept all %d segments", st.Segments)
	}
	// More traffic after the cut: it lives only in the WAL tail.
	add(301, 400)
	b1.Close()
	l1.Close()

	// The header carries the cut, so recovery replays only (300, 400] —
	// restore first, then attach, same order as the server startup path.
	_, _, walLSN, payload, err := queryd.OpenCheckpoint(ckpt)
	if err != nil {
		t.Fatal(err)
	}
	if walLSN != 300 {
		t.Fatalf("checkpoint header records cut LSN %d, want 300", walLSN)
	}
	opts.Dir = dir
	l2, err := wal.Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	b2, err := queryd.NewSketchBackendFrom(queryd.SketchBackendConfig{
		Algo: "Ours", Spec: walTestSpec(),
		Ingest: &ingest.Tuning{Policy: ingest.Block},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { b2.Close(); l2.Close() })
	if err := func() error { defer payload.Close(); return b2.Restore(payload) }(); err != nil {
		t.Fatal(err)
	}
	// ckptLSN 0: the log's own watermark alone must already cover the cut.
	if err := b2.AttachWAL(l2, 0); err != nil {
		t.Fatal(err)
	}
	if got := l2.Stats().Replayed; got != 100 {
		t.Fatalf("replayed %d records, want exactly the 100 past the cut", got)
	}
	for _, key := range []uint64{1, 300, 301, 400} {
		assertContains(t, b2, key, truth[key])
	}
}

func TestStatusReportsWALCounters(t *testing.T) {
	dir := t.TempDir()
	b, _ := newWALBackend(t, dir, 0, wal.Options{Fsync: wal.FsyncPolicy{Mode: wal.SyncEachBatch}})
	s, err := queryd.New(b, queryd.Config{})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() { ts.Close(); s.Close() })
	for i := uint64(1); i <= 5; i++ {
		b.Ingest(ingest.Batch{Items: []stream.Item{{Key: i, Value: 1}}})
	}
	st := getJSON[queryd.StatusResponse](t, ts.URL+"/v1/status")
	w := st.Backend.WAL
	if w == nil {
		t.Fatal("/v1/status has no wal section on a WAL-backed backend")
	}
	if w.Appended != 5 || w.LastLSN != 5 || w.Segments != 1 || w.Bytes == 0 {
		t.Errorf("wal counters %+v: want 5 appends through LSN 5 in 1 segment", w)
	}
	if w.Fsyncs < 5 || w.LastFsync == "" {
		t.Errorf("per-batch policy reported %d fsyncs (last %q), want ≥ 5 with a timestamp", w.Fsyncs, w.LastFsync)
	}
	if w.Policy != "batch" {
		t.Errorf("policy = %q, want batch", w.Policy)
	}
}

func TestStaleCheckpointTempsCleanedAtStartup(t *testing.T) {
	dir := t.TempDir()
	ckpt := filepath.Join(dir, "state.ckpt")
	stale := ckpt + ".tmp12345"
	if err := os.WriteFile(stale, []byte("half a checkpoint"), 0o644); err != nil {
		t.Fatal(err)
	}
	_, _, _ = newStandaloneServer(t, queryd.Config{CheckpointPath: ckpt})
	if _, err := os.Stat(stale); !os.IsNotExist(err) {
		t.Fatalf("stale checkpoint temp survived server startup (stat err: %v)", err)
	}
}

func TestAttachWALRefusesEpochMode(t *testing.T) {
	l, err := wal.Open(wal.Options{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	b, err := queryd.NewSketchBackend("Ours", walTestSpec(), 50e6, 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.AttachWAL(l, 0); err == nil {
		t.Fatal("epoch-mode backend accepted a WAL")
	}
}

// runKillChild is the victim process of the kill-recovery test: a WAL-backed
// backend (per-batch fsync, Block policy) that ingests forever, printing one
// "ack <key> <value>" line to stdout after each acked — therefore durable —
// batch. It never exits on its own; the parent SIGKILLs it mid-stream.
func runKillChild(dir string) {
	l, err := wal.Open(wal.Options{Dir: dir, Fsync: wal.FsyncPolicy{Mode: wal.SyncEachBatch}})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	b, err := queryd.NewSketchBackendFrom(queryd.SketchBackendConfig{
		Algo: "Ours", Spec: walTestSpec(),
		Ingest: &ingest.Tuning{Policy: ingest.Block},
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	if err := b.AttachWAL(l, 0); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	for i := uint64(0); ; i++ {
		key := 1 + i%16
		ack := b.Ingest(ingest.Batch{Items: []stream.Item{{Key: key, Value: 1}}})
		if ack.Dropped != 0 {
			fmt.Fprintf(os.Stderr, "batch %d: %d items dropped\n", i, ack.Dropped)
			os.Exit(2)
		}
		// os.Stdout is unbuffered: once this line is readable by the
		// parent, the ack — and with it the fsync — already happened.
		fmt.Printf("ack %d 1\n", key)
	}
}

func TestKillRecoveryReadYourAckedWrites(t *testing.T) {
	// The durability contract, certified end to end: SIGKILL the server
	// mid-ingest and every write it acked must be in the recovered state.
	// The child's stdout is the proof stream — a line is printed only after
	// its batch's Ingest returned under per-batch fsync, so every line read
	// here names a batch the recovered backend must contain.
	dir := t.TempDir()
	child := exec.Command(os.Args[0])
	child.Env = append(os.Environ(), "QUERYD_WAL_KILL_CHILD="+dir)
	out, err := child.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	child.Stderr = os.Stderr
	if err := child.Start(); err != nil {
		t.Fatal(err)
	}
	acked := map[uint64]uint64{}
	sc := bufio.NewScanner(out)
	lines := 0
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) != 3 || fields[0] != "ack" {
			t.Fatalf("child printed %q", sc.Text())
		}
		key, err1 := strconv.ParseUint(fields[1], 10, 64)
		val, err2 := strconv.ParseUint(fields[2], 10, 64)
		if err1 != nil || err2 != nil {
			t.Fatalf("child printed %q", sc.Text())
		}
		acked[key] += val
		if lines++; lines == 200 {
			// Kill mid-stream, no warning, no flush — then drain whatever
			// acks were already in flight in the pipe (each is as binding
			// as the first 200).
			if err := child.Process.Kill(); err != nil {
				t.Fatal(err)
			}
		}
	}
	_ = child.Wait() // expected: killed
	if lines < 200 {
		t.Fatalf("child died after only %d acks", lines)
	}
	t.Logf("child SIGKILLed after %d acked batches", lines)

	b, l := newWALBackend(t, dir, 0, wal.Options{Fsync: wal.FsyncPolicy{Mode: wal.SyncEachBatch}})
	st := l.Stats()
	if st.Replayed < uint64(lines) {
		t.Fatalf("recovered only %d records from %d acked writes", st.Replayed, lines)
	}
	for key, want := range acked {
		ans, err := b.Execute(query.Request{Kind: query.Point, Keys: []uint64{key}})
		if err != nil {
			t.Fatal(err)
		}
		e := ans.PerKey[0]
		// The true recovered count for key is ≥ its acked count (the kill
		// may have let a few un-printed appends land too — that's allowed;
		// losing an acked one is not). The certified interval contains the
		// truth, so its upper end must reach the acked count.
		if !ans.Certified || e.Upper < want {
			t.Errorf("key %d: certified=%v upper bound %d below acked count %d — acked writes lost",
				key, ans.Certified, e.Upper, want)
		}
	}
}
