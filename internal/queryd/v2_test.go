package queryd_test

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/ingest"
	"repro/internal/netsum"
	"repro/internal/query"
	"repro/internal/queryd"
	"repro/internal/sketch"
	"repro/internal/stream"
)

// newV2Server spins up a standalone Ours server with the stream ingested.
func newV2Server(t *testing.T, cfg queryd.Config) (*httptest.Server, *queryd.SketchBackend, func()) {
	t.Helper()
	spec := sketch.Spec{MemoryBytes: 256 << 10, Lambda: 25, Seed: 1}
	b, err := queryd.NewSketchBackend("Ours", spec, 0, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	s, err := queryd.New(b, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	return ts, b, func() { ts.Close(); s.Close() }
}

// postExec sends one /v2/query batch and decodes the response.
func postExec(t *testing.T, url string, req query.Request) (queryd.ExecResponse, int) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+"/v2/query", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out queryd.ExecResponse
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatalf("decoding exec response: %v", err)
		}
	}
	return out, resp.StatusCode
}

// TestV2BatchAnswers256Keys is the acceptance pin: one request, 256 keys,
// per-key certified bounds containing the exact counts.
func TestV2BatchAnswers256Keys(t *testing.T) {
	ts, b, done := newV2Server(t, queryd.Config{})
	defer done()
	s := stream.IPTrace(50_000, 3)
	b.Ingest(ingest.Batch{Items: s.Items})
	truth := s.Truth()

	keys := make([]uint64, 0, 256)
	for _, it := range s.Items {
		keys = append(keys, it.Key)
		if len(keys) == 256 {
			break
		}
	}
	resp, status := postExec(t, ts.URL, query.Request{Kind: query.Point, Keys: keys})
	if status != http.StatusOK {
		t.Fatalf("status %d", status)
	}
	if len(resp.PerKey) != 256 {
		t.Fatalf("answered %d keys, want 256", len(resp.PerKey))
	}
	if !resp.Certified {
		t.Fatal("Ours batch answer not certified")
	}
	for i, e := range resp.PerKey {
		if e.Key != keys[i] {
			t.Fatalf("PerKey[%d] answers key %d, want %d (alignment broken)", i, e.Key, keys[i])
		}
		if f := truth[e.Key]; f > e.Upper || e.Lower > f {
			t.Errorf("key %d: truth %d outside [%d,%d]", e.Key, f, e.Lower, e.Upper)
		}
	}
}

// TestV2PartialCacheHitsComputeOnlyMisses: a second batch overlapping the
// first must serve the overlap from the per-key cache and compute only the
// new keys.
func TestV2PartialCacheHitsComputeOnlyMisses(t *testing.T) {
	ts, b, done := newV2Server(t, queryd.Config{CacheTTL: time.Hour})
	defer done()
	b.Ingest(ingest.Batch{Items: []stream.Item{{Key: 1, Value: 10}, {Key: 2, Value: 20}, {Key: 3, Value: 30}}})

	first, _ := postExec(t, ts.URL, query.Request{Kind: query.Point, Keys: []uint64{1, 2}})
	if first.CachedKeys != 0 {
		t.Errorf("cold batch reports %d cached keys", first.CachedKeys)
	}
	second, _ := postExec(t, ts.URL, query.Request{Kind: query.Point, Keys: []uint64{1, 2, 3}})
	if second.CachedKeys != 2 {
		t.Errorf("overlapping batch reports %d cached keys, want 2", second.CachedKeys)
	}
	if second.PerKey[2].Est < 30 {
		t.Errorf("fresh key estimate %d < exact 30", second.PerKey[2].Est)
	}
	if second.PerKey[0] != first.PerKey[0] || second.PerKey[1] != first.PerKey[1] {
		t.Error("cached keys diverged from their first answers")
	}
	third, _ := postExec(t, ts.URL, query.Request{Kind: query.Point, Keys: []uint64{3, 2, 1}})
	if third.CachedKeys != 3 {
		t.Errorf("fully-covered batch reports %d cached keys, want 3", third.CachedKeys)
	}
}

// TestV2WindowAndPointCacheSeparately: the same key under different kinds
// or spans must not collide in the per-key cache.
func TestV2WindowAndPointCacheSeparately(t *testing.T) {
	clk := &manualTestClock{now: time.Unix(0, 0)}
	spec := sketch.Spec{MemoryBytes: 128 << 10, Lambda: 25, Seed: 1}
	b, err := queryd.NewSketchBackend("Ours", spec, time.Second, 4, clk.Now)
	if err != nil {
		t.Fatal(err)
	}
	s, err := queryd.New(b, queryd.Config{})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer func() { ts.Close(); s.Close() }()

	b.Ingest(ingest.Batch{Items: []stream.Item{{Key: 7, Value: 10}}})
	clk.Advance(time.Second)
	b.Ingest(ingest.Batch{Items: []stream.Item{{Key: 7, Value: 5}}})
	clk.Advance(time.Second)
	b.Ingest(ingest.Batch{Items: []stream.Item{{Key: 0, Value: 0}}}) // seal

	w1, _ := postExec(t, ts.URL, query.Request{Kind: query.Window, Keys: []uint64{7}, Window: 1})
	all, _ := postExec(t, ts.URL, query.Request{Kind: query.Point, Keys: []uint64{7}})
	if w1.PerKey[0].Est >= all.PerKey[0].Est {
		t.Errorf("1-epoch window %d should be below full retention %d",
			w1.PerKey[0].Est, all.PerKey[0].Est)
	}
	if w1.Coverage != 1 || all.Coverage != 2 {
		t.Errorf("coverage window=%d point=%d, want 1 and 2", w1.Coverage, all.Coverage)
	}
	if w1.CachedKeys != 0 || all.CachedKeys != 0 {
		t.Error("distinct scopes served each other's cache entries")
	}
}

// TestV2TopK: the topk kind serves through the whole-answer cache.
func TestV2TopK(t *testing.T) {
	ts, b, done := newV2Server(t, queryd.Config{})
	defer done()
	for i := 0; i < 100; i++ {
		b.Ingest(ingest.Batch{Items: []stream.Item{{Key: 1, Value: 3}, {Key: 2, Value: 1}}})
	}
	r, status := postExec(t, ts.URL, query.Request{Kind: query.TopK, K: 1})
	if status != http.StatusOK || len(r.PerKey) != 1 || r.PerKey[0].Key != 1 {
		t.Fatalf("topk status %d answer %+v, want key 1", status, r.PerKey)
	}
	r2, _ := postExec(t, ts.URL, query.Request{Kind: query.TopK, K: 1})
	if !r2.Cached {
		t.Error("repeated topk not served from cache")
	}
}

// errorEnvelope fetches a URL and decodes the JSON error body, also
// checking the Content-Type satellite contract.
func errorEnvelope(t *testing.T, method, url string, body io.Reader) (int, queryd.ErrorBody) {
	t.Helper()
	req, err := http.NewRequest(method, url, body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Errorf("%s %s: Content-Type %q, want application/json", method, url, ct)
	}
	var eb queryd.ErrorBody
	if err := json.NewDecoder(resp.Body).Decode(&eb); err != nil {
		t.Fatalf("%s %s: error body is not the JSON envelope: %v", method, url, err)
	}
	return resp.StatusCode, eb
}

// TestJSONErrorEnvelopeEverywhere is the satellite pin: every failure —
// bad parameters, unknown endpoints, wrong methods, refused capabilities,
// oversized batches — answers {"error":{code,message}} with the JSON
// Content-Type.
func TestJSONErrorEnvelopeEverywhere(t *testing.T) {
	ts, b, done := newV2Server(t, queryd.Config{MaxBatch: 8})
	defer done()
	b.Ingest(ingest.Batch{Items: []stream.Item{{Key: 1, Value: 1}}})

	bigBatch, _ := json.Marshal(query.Request{Kind: query.Point, Keys: make([]uint64, 9)})
	cases := []struct {
		method, url string
		body        string
		status      int
		code        string
	}{
		{"GET", "/v1/point", "", http.StatusBadRequest, "bad_request"},
		{"GET", "/v1/point?key=abc", "", http.StatusBadRequest, "bad_request"},
		{"GET", "/v1/window?key=1&n=0", "", http.StatusBadRequest, "bad_request"},
		{"GET", "/v1/window?key=1&agent=7", "", http.StatusNotImplemented, "unsupported"},
		{"GET", "/v1/topk?k=0", "", http.StatusBadRequest, "bad_request"},
		{"POST", "/v1/checkpoint", "", http.StatusNotImplemented, "unsupported"},
		{"POST", "/v1/insert", "{", http.StatusBadRequest, "bad_request"},
		{"GET", "/v1/nope", "", http.StatusNotFound, "not_found"},
		{"POST", "/v1/point?key=1", "", http.StatusMethodNotAllowed, "method_not_allowed"},
		{"GET", "/v2/query", "", http.StatusMethodNotAllowed, "method_not_allowed"},
		{"POST", "/v2/query", "{\"kind\":\"nope\"}", http.StatusBadRequest, "bad_request"},
		{"POST", "/v2/query", "{\"kind\":\"point\"}", http.StatusBadRequest, "bad_request"},
		{"POST", "/v2/query", string(bigBatch), http.StatusBadRequest, "bad_request"},
	}
	for _, c := range cases {
		var body io.Reader
		if c.body != "" {
			body = strings.NewReader(c.body)
		}
		status, eb := errorEnvelope(t, c.method, ts.URL+c.url, body)
		if status != c.status || eb.Error.Code != c.code {
			t.Errorf("%s %s: status=%d code=%q, want %d %q (message: %s)",
				c.method, c.url, status, eb.Error.Code, c.status, c.code, eb.Error.Message)
		}
		if eb.Error.Message == "" {
			t.Errorf("%s %s: empty error message", c.method, c.url)
		}
	}
}

// TestV2AgentScopeOnCollector: Request.Agent routes to one agent's ring
// over HTTP, and unknown agents answer 404 through the envelope.
func TestV2AgentScopeOnCollector(t *testing.T) {
	clk := &manualTestClock{now: time.Unix(0, 0)}
	c, err := netsum.NewCollector("127.0.0.1:0", netsum.CollectorConfig{
		Spec:         sketch.Spec{Lambda: 25, MemoryBytes: 128 << 10, Seed: 1},
		Epoch:        time.Second,
		WindowEpochs: 4,
		Clock:        clk.Now,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	a, err := netsum.Dial(c.Addr(), 42)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	for i := 0; i < 80; i++ {
		a.Record(5, 1)
	}
	for i := 0; i < 40; i++ {
		a.Record(6, 1)
	}
	if err := a.Flush(); err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := a.Stats(); err != nil { // sync the batch
		t.Fatal(err)
	}
	clk.Advance(time.Second) // seal epoch 0
	s, err := queryd.New(queryd.CollectorBackend{C: c, Algo: "Ours"}, queryd.Config{})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer func() { ts.Close(); s.Close() }()

	resp, status := postExec(t, ts.URL,
		query.Request{Kind: query.Window, Keys: []uint64{5, 6}, Window: 2, Agent: 42})
	if status != http.StatusOK {
		t.Fatalf("agent batch status %d", status)
	}
	if resp.Coverage != 1 || resp.PerKey[0].Est < 80 || resp.PerKey[0].Lower > 80 {
		t.Errorf("agent answer %+v, want coverage 1 and interval around 80", resp)
	}
	status, eb := errorEnvelope(t, "POST", ts.URL+"/v2/query",
		strings.NewReader(`{"kind":"window","keys":[5],"window":2,"agent":999}`))
	if status != http.StatusNotFound || eb.Error.Code != "not_found" {
		t.Errorf("unknown agent: status=%d code=%q, want 404 not_found", status, eb.Error.Code)
	}
}
