package queryd

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"sync"
	"time"

	"repro/internal/netsum"
	"repro/internal/sketch"
	"repro/internal/stream"
)

// Config tunes the server. The zero value is usable: a 4096-entry cache,
// 250ms TTL for live answers, and no checkpointing.
type Config struct {
	// CacheCapacity bounds the result cache (entries); ≤ 0 means 4096.
	CacheCapacity int
	// CacheTTL is how long live-window (cumulative) answers stay fresh;
	// ≤ 0 means 250ms. Sealed-window answers ignore it — they are immutable
	// and cache until their generation is superseded.
	CacheTTL time.Duration
	// CheckpointPath, when set with CheckpointEvery, periodically
	// checkpoints the backend (it must implement Checkpointer) and writes a
	// final checkpoint on Close.
	CheckpointPath  string
	CheckpointEvery time.Duration
	// Algo and Spec describe the backend's sketch for checkpoint headers.
	Algo string
	Spec sketch.Spec
	// Logf receives server diagnostics; nil silences them.
	Logf func(format string, args ...any)
	// Clock overrides time for cache TTLs (tests); nil means wall time.
	Clock func() time.Time
}

// Server is the HTTP/JSON query server: it fronts a Backend with
//
//	GET  /v1/point?key=K          point estimate with certified bounds
//	GET  /v1/window?key=K&n=N     sliding-window query over sealed epochs
//	     (&agent=ID scopes to one agent, where the backend supports it)
//	GET  /v1/topk?k=N             heavy-hitter enumeration, heaviest first
//	GET  /v1/status               backend + cache + checkpoint counters
//	POST /v1/insert               standalone ingest: {"items":[{"key","value"}]}
//	POST /v1/checkpoint           checkpoint on demand
//
// Every query flows through the epoch-aware cache; see Cache for the
// freshness regimes.
type Server struct {
	b     Backend
	cfg   Config
	cache *Cache
	mux   *http.ServeMux

	stop      chan struct{}
	wg        sync.WaitGroup
	closeOnce sync.Once

	ckptMu   sync.Mutex
	lastCkpt time.Time
	ckptErr  error
}

// New builds a server over b. Close it to stop background checkpointing.
func New(b Backend, cfg Config) (*Server, error) {
	if cfg.CacheCapacity <= 0 {
		cfg.CacheCapacity = 4096
	}
	if cfg.CacheTTL <= 0 {
		cfg.CacheTTL = 250 * time.Millisecond
	}
	s := &Server{
		b:     b,
		cfg:   cfg,
		cache: NewCache(cfg.CacheCapacity, cfg.CacheTTL, cfg.Clock),
		mux:   http.NewServeMux(),
		stop:  make(chan struct{}),
	}
	if cfg.CheckpointPath != "" {
		cp, ok := b.(Checkpointer)
		if !ok {
			return nil, fmt.Errorf("queryd: backend %T cannot checkpoint", b)
		}
		// Refuse configurations that could never persist state, instead of
		// logging a failed checkpoint every interval forever.
		if err := cp.CanCheckpoint(); err != nil {
			return nil, fmt.Errorf("queryd: checkpointing configured but impossible: %w", err)
		}
	}
	s.mux.HandleFunc("GET /v1/point", s.handlePoint)
	s.mux.HandleFunc("GET /v1/window", s.handleWindow)
	s.mux.HandleFunc("GET /v1/topk", s.handleTopK)
	s.mux.HandleFunc("GET /v1/status", s.handleStatus)
	s.mux.HandleFunc("POST /v1/insert", s.handleInsert)
	s.mux.HandleFunc("POST /v1/checkpoint", s.handleCheckpoint)
	if cfg.CheckpointPath != "" && cfg.CheckpointEvery > 0 {
		s.wg.Add(1)
		go s.checkpointLoop()
	}
	return s, nil
}

// Handler returns the HTTP handler to mount.
func (s *Server) Handler() http.Handler { return s.mux }

// Close stops background checkpointing, writing a final checkpoint when
// one is configured.
func (s *Server) Close() error {
	var err error
	s.closeOnce.Do(func() {
		close(s.stop)
		s.wg.Wait()
		if s.cfg.CheckpointPath != "" {
			err = s.CheckpointNow()
		}
	})
	return err
}

func (s *Server) logf(format string, args ...any) {
	if s.cfg.Logf != nil {
		s.cfg.Logf(format, args...)
	}
}

// CheckpointNow writes one checkpoint to the configured path.
func (s *Server) CheckpointNow() error {
	cp, ok := s.b.(Checkpointer)
	if !ok {
		return errors.New("queryd: backend does not support checkpointing")
	}
	if s.cfg.CheckpointPath == "" {
		return errors.New("queryd: no checkpoint path configured")
	}
	err := WriteCheckpoint(s.cfg.CheckpointPath, s.cfg.Algo, s.cfg.Spec, cp.Checkpoint)
	s.ckptMu.Lock()
	s.lastCkpt = time.Now()
	s.ckptErr = err
	s.ckptMu.Unlock()
	return err
}

func (s *Server) checkpointLoop() {
	defer s.wg.Done()
	t := time.NewTicker(s.cfg.CheckpointEvery)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			if err := s.CheckpointNow(); err != nil {
				s.logf("queryd: periodic checkpoint: %v", err)
			}
		case <-s.stop:
			return
		}
	}
}

// QueryResponse is the JSON body of point and window queries. When
// Certified, truth lies in [Lower, Upper] = [Est−MPE, Est] for the history
// the answer covers.
type QueryResponse struct {
	Key       uint64 `json:"key"`
	Est       uint64 `json:"est"`
	MPE       uint64 `json:"mpe"`
	Lower     uint64 `json:"lower"`
	Upper     uint64 `json:"upper"`
	Certified bool   `json:"certified"`
	// Window and Covered report the requested and answered sealed-epoch
	// spans of window queries (both 0 for cumulative point answers).
	Window  int `json:"window,omitempty"`
	Covered int `json:"covered,omitempty"`
	// Agent scopes an agent-window answer (absent for global ones).
	Agent      uint64 `json:"agent,omitempty"`
	Generation uint64 `json:"generation"`
	Cached     bool   `json:"cached"`
}

func (r QueryResponse) withCached(c bool) any { r.Cached = c; return r }

// TopKItem is one heavy hitter with its certified interval.
type TopKItem struct {
	Key       uint64 `json:"key"`
	Est       uint64 `json:"est"`
	MPE       uint64 `json:"mpe"`
	Lower     uint64 `json:"lower"`
	Certified bool   `json:"certified"`
}

// TopKResponse is the JSON body of /v1/topk.
type TopKResponse struct {
	K          int        `json:"k"`
	Items      []TopKItem `json:"items"`
	Generation uint64     `json:"generation"`
	Cached     bool       `json:"cached"`
}

func (r TopKResponse) withCached(c bool) any { r.Cached = c; return r }

// cacheable is implemented by response types so a cached copy can be
// stamped without mutating the stored value.
type cacheable interface{ withCached(bool) any }

// StatusResponse is the JSON body of /v1/status.
type StatusResponse struct {
	Backend    Status            `json:"backend"`
	Cache      CacheStats        `json:"cache"`
	Checkpoint *CheckpointStatus `json:"checkpoint,omitempty"`
}

// CheckpointStatus reports the most recent checkpoint attempt.
type CheckpointStatus struct {
	Path     string `json:"path"`
	LastTime string `json:"last_time,omitempty"`
	Error    string `json:"error,omitempty"`
}

func (s *Server) handlePoint(w http.ResponseWriter, r *http.Request) {
	key, err := parseUint(r, "key", true, 0)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	s.serveCached(w, fmt.Sprintf("p/%d", key), func(gen uint64) (any, error) {
		return s.toResponse(key, s.b.Point(key), gen), nil
	})
}

func (s *Server) handleWindow(w http.ResponseWriter, r *http.Request) {
	key, err := parseUint(r, "key", true, 0)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	n, err := parseUint(r, "n", false, 1)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	if n < 1 || n > 1<<20 {
		httpError(w, http.StatusBadRequest, fmt.Errorf("window n=%d out of range [1, 2^20]", n))
		return
	}
	if agentStr := r.URL.Query().Get("agent"); agentStr != "" {
		agent, err := strconv.ParseUint(agentStr, 10, 64)
		if err != nil {
			httpError(w, http.StatusBadRequest, fmt.Errorf("agent: %w", err))
			return
		}
		aq, ok := s.b.(AgentQuerier)
		if !ok {
			httpError(w, http.StatusNotImplemented, errors.New("backend cannot scope queries to one agent"))
			return
		}
		s.serveCached(w, fmt.Sprintf("wa/%d/%d/%d", agent, key, n), func(gen uint64) (any, error) {
			res, err := aq.AgentWindow(agent, key, int(n))
			if err != nil {
				return nil, err
			}
			resp := s.toResponse(key, res, gen)
			resp.Window = int(n)
			resp.Agent = agent
			return resp, nil
		})
		return
	}
	s.serveCached(w, fmt.Sprintf("w/%d/%d", key, n), func(gen uint64) (any, error) {
		resp := s.toResponse(key, s.b.Window(key, int(n)), gen)
		resp.Window = int(n)
		return resp, nil
	})
}

func (s *Server) handleTopK(w http.ResponseWriter, r *http.Request) {
	k, err := parseUint(r, "k", false, 10)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	// Each returned item costs one backend point query (per-agent walk plus
	// merged-view read on collectors), so k is bounded well below the cache
	// and tracked-set sizes; the composed answer is cached like any other.
	if k < 1 || k > 1024 {
		httpError(w, http.StatusBadRequest, fmt.Errorf("k=%d out of range [1, 1024]", k))
		return
	}
	s.serveCached(w, fmt.Sprintf("t/%d", k), func(gen uint64) (any, error) {
		kvs, err := s.b.TopK(int(k))
		if err != nil {
			return nil, err
		}
		resp := TopKResponse{K: int(k), Items: make([]TopKItem, 0, len(kvs)), Generation: gen}
		for _, kv := range kvs {
			// Rank by the tracked estimate, report the point query's
			// interval: for collectors it intersects the merged view with
			// the estimate-sum composition, so it is never looser.
			res := s.b.Point(kv.Key)
			resp.Items = append(resp.Items, TopKItem{
				Key:       kv.Key,
				Est:       res.Est,
				MPE:       res.MPE,
				Lower:     sketch.CertifiedLowerBound(res.Est, res.MPE),
				Certified: res.Certified,
			})
		}
		return resp, nil
	})
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	resp := StatusResponse{Backend: s.b.Status(), Cache: s.cache.Stats()}
	if s.cfg.CheckpointPath != "" {
		cs := &CheckpointStatus{Path: s.cfg.CheckpointPath}
		s.ckptMu.Lock()
		if !s.lastCkpt.IsZero() {
			cs.LastTime = s.lastCkpt.UTC().Format(time.RFC3339)
		}
		if s.ckptErr != nil {
			cs.Error = s.ckptErr.Error()
		}
		s.ckptMu.Unlock()
		resp.Checkpoint = cs
	}
	writeJSON(w, http.StatusOK, resp)
}

// insertRequest is the POST /v1/insert body. A zero or omitted value
// counts as 1, the frequency-estimation default.
type insertRequest struct {
	Items []struct {
		Key   uint64 `json:"key"`
		Value uint64 `json:"value"`
	} `json:"items"`
}

func (s *Server) handleInsert(w http.ResponseWriter, r *http.Request) {
	ing, ok := s.b.(Ingester)
	if !ok {
		httpError(w, http.StatusNotImplemented,
			errors.New("backend does not ingest over HTTP (collector backends ingest through the agent protocol)"))
		return
	}
	var req insertRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 32<<20))
	if err := dec.Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, fmt.Errorf("decoding items: %w", err))
		return
	}
	items := make([]stream.Item, len(req.Items))
	for i, it := range req.Items {
		v := it.Value
		if v == 0 {
			v = 1
		}
		items[i] = stream.Item{Key: it.Key, Value: v}
	}
	ing.Ingest(items)
	writeJSON(w, http.StatusOK, map[string]any{
		"ingested":   len(items),
		"generation": s.b.Generation(),
	})
}

func (s *Server) handleCheckpoint(w http.ResponseWriter, r *http.Request) {
	cp, ok := s.b.(Checkpointer)
	if !ok || s.cfg.CheckpointPath == "" {
		httpError(w, http.StatusNotImplemented,
			errors.New("queryd: checkpointing not configured (backend support and -checkpoint path required)"))
		return
	}
	if err := cp.CanCheckpoint(); err != nil {
		httpError(w, http.StatusNotImplemented, err)
		return
	}
	start := time.Now()
	if err := s.CheckpointNow(); err != nil {
		// Support was verified above: what failed is the write itself, a
		// retryable server-side condition, not a missing capability.
		httpError(w, http.StatusInternalServerError, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"path":       s.cfg.CheckpointPath,
		"elapsed_ms": time.Since(start).Milliseconds(),
	})
}

// toResponse shapes a backend Result, stamping the generation the request
// was admitted under.
func (s *Server) toResponse(key uint64, res Result, gen uint64) QueryResponse {
	return QueryResponse{
		Key:        key,
		Est:        res.Est,
		MPE:        res.MPE,
		Lower:      sketch.CertifiedLowerBound(res.Est, res.MPE),
		Upper:      res.Est,
		Certified:  res.Certified,
		Covered:    res.Covered,
		Generation: gen,
	}
}

// serveCached runs compute through the epoch-aware cache and writes the
// JSON answer. Sealed-only backends cache immutably per generation; live
// backends get the short TTL. The generation is read exactly once and
// passed to compute, so the cache key and the response's generation field
// always agree even when a window seals mid-request (the answer may then
// reflect the newer sealed set — still a certified interval — but it is
// labeled and keyed consistently).
func (s *Server) serveCached(w http.ResponseWriter, key string, compute func(gen uint64) (any, error)) {
	gen := s.b.Generation()
	val, cached, err := s.cache.Do(key, gen, s.b.Epochal(), func() (any, error) { return compute(gen) })
	if err != nil {
		status := http.StatusNotImplemented
		if errors.Is(err, netsum.ErrUnknownAgent) {
			status = http.StatusNotFound
		}
		httpError(w, status, err)
		return
	}
	writeJSON(w, http.StatusOK, val.(cacheable).withCached(cached))
}

func parseUint(r *http.Request, name string, required bool, def uint64) (uint64, error) {
	v := r.URL.Query().Get(name)
	if v == "" {
		if required {
			return 0, fmt.Errorf("missing query parameter %q", name)
		}
		return def, nil
	}
	u, err := strconv.ParseUint(v, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("%s: %w", name, err)
	}
	return u, nil
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(v)
}

func httpError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}
