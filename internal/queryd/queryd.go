package queryd

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"sync"
	"time"

	"repro/internal/ingest"
	"repro/internal/netsum"
	"repro/internal/query"
	"repro/internal/rcache"
	"repro/internal/sketch"
	"repro/internal/stream"
	"repro/internal/telemetry"
	"repro/internal/telemetry/telhttp"
)

// Config tunes the server. The zero value is usable: a 4096-entry sharded
// LRU cache, 250ms TTL for live answers, query-plane batch limits, and no
// checkpointing.
type Config struct {
	// CacheCapacity bounds the result cache (entries); ≤ 0 means 4096.
	CacheCapacity int
	// CacheTTL is how long live-window (cumulative) answers stay fresh;
	// ≤ 0 means 250ms. Sealed-window answers ignore it — they are immutable
	// and cache until their generation is superseded. Cached deterministic
	// errors (unknown agents) expire on the same interval.
	CacheTTL time.Duration
	// CachePolicy names the eviction/admission policy: rcache.PolicyLRU
	// (the default), rcache.PolicyS3FIFO, or rcache.PolicyTinyLFU. Unknown
	// names fail New.
	CachePolicy string
	// CacheShards is the result cache's shard count (rounded up to a power
	// of two); ≤ 0 means rcache.DefaultShards.
	CacheShards int
	// CacheSWR is the stale-while-revalidate window appended after
	// CacheTTL: an expired live answer still inside it is served
	// immediately while one background flight refreshes the entry. Sound
	// because a certified interval stays a correct interval for the state
	// it was computed from — staleness costs freshness, never soundness.
	// Zero disables SWR.
	CacheSWR time.Duration
	// MaxBatch caps the keys of one /v2/query request; ≤ 0 means the
	// query-plane-wide query.MaxBatchKeys. Values above that are clamped —
	// the shared limit protects every surface identically.
	MaxBatch int
	// CheckpointPath, when set with CheckpointEvery, periodically
	// checkpoints the backend (it must implement Checkpointer) and writes a
	// final checkpoint on Close.
	CheckpointPath  string
	CheckpointEvery time.Duration
	// Algo and Spec describe the backend's sketch for checkpoint headers.
	Algo string
	Spec sketch.Spec
	// Logf receives server diagnostics; nil silences them.
	Logf func(format string, args ...any)
	// Clock overrides time for cache TTLs (tests); nil means wall time.
	Clock func() time.Time
	// Metrics is the registry the server registers its instruments on (and
	// serves at GET /metrics); nil builds a fresh one. Each server needs its
	// own registry — registering two servers on one panics on the duplicate
	// series, exactly like registering the same sketch variant twice.
	Metrics *telemetry.Registry
	// DisableMetrics drops the GET /metrics route. Instruments still
	// register and /v1/status still reads them; only the Prometheus
	// exposition endpoint disappears (rsserve -metrics=false).
	DisableMetrics bool
}

// Server is the HTTP/JSON query server: it fronts a Backend with
//
//	POST /v2/query                one typed query.Request batch — N keys,
//	                              per-key certified bounds, one round trip
//	POST /v2/ingest               one typed ingest.Batch (items + source +
//	                              epoch tag), answered with Ack JSON
//	GET  /v1/point?key=K          point estimate with certified bounds
//	GET  /v1/window?key=K&n=N     sliding-window query over sealed epochs
//	     (&agent=ID scopes to one agent, where the backend supports it)
//	GET  /v1/topk?k=N             heavy-hitter enumeration, heaviest first
//	GET  /v1/status               backend + cache + checkpoint counters
//	POST /v1/insert               standalone ingest: {"items":[{"key","value"}]}
//	POST /v1/checkpoint           checkpoint on demand
//
// The v1 endpoints are single-key shims over the same Execute the batch
// endpoint uses. Every query flows through the epoch-aware cache — v1
// responses whole, v2 batches per key, so partial hits only compute the
// misses. Errors are a consistent JSON envelope:
// {"error":{"code":"...","message":"..."}}.
type Server struct {
	b     Backend
	cfg   Config
	cache *rcache.Cache
	mux   *http.ServeMux

	// reg is the telemetry plane: every subsystem the server fronts
	// (backend, pipeline, WAL, ring, cache) registers the SAME instruments
	// its JSON status reads, and GET /metrics serves them in Prometheus
	// text format.
	reg       *telemetry.Registry
	batchKeys *telemetry.Histogram

	ckptOK      telemetry.Counter
	ckptFailed  telemetry.Counter
	ckptSeconds *telemetry.Histogram

	stop      chan struct{}
	wg        sync.WaitGroup
	closeOnce sync.Once

	// ckptRun serializes whole checkpoint writes: two concurrent cuts would
	// race the backend's cut LSN against the file each cut belongs in, and
	// a WAL truncation must commit the checkpoint that defined its cut.
	ckptRun  sync.Mutex
	ckptMu   sync.Mutex
	lastCkpt time.Time
	ckptErr  error
}

// WALBacked is implemented by backends whose ingest is write-ahead logged.
// The server closes the durability loop: after a checkpoint file lands (tmp
// + fsync + rename + dir fsync), CheckpointCommitted lets the backend
// advance its WAL watermark through CutLSN and truncate dead segments.
type WALBacked interface {
	// CutLSN is the WAL position the backend's most recent Checkpoint cut
	// covered; the snapshot in that checkpoint holds every record at or
	// below it.
	CutLSN() uint64
	// CheckpointCommitted reports that the checkpoint holding the last cut
	// is durable, so the WAL may truncate through it.
	CheckpointCommitted() error
}

// New builds a server over b. Close it to stop background checkpointing.
func New(b Backend, cfg Config) (*Server, error) {
	if cfg.CacheCapacity <= 0 {
		cfg.CacheCapacity = 4096
	}
	if cfg.CacheTTL <= 0 {
		cfg.CacheTTL = 250 * time.Millisecond
	}
	policy, err := rcache.ParsePolicy(cfg.CachePolicy)
	if err != nil {
		return nil, fmt.Errorf("queryd: %w", err)
	}
	if cfg.MaxBatch <= 0 || cfg.MaxBatch > query.MaxBatchKeys {
		cfg.MaxBatch = query.MaxBatchKeys
	}
	if cfg.Metrics == nil {
		cfg.Metrics = telemetry.NewRegistry()
	}
	s := &Server{
		b:   b,
		cfg: cfg,
		cache: rcache.New(rcache.Config{
			Capacity: cfg.CacheCapacity,
			Shards:   cfg.CacheShards,
			Policy:   policy,
			TTL:      cfg.CacheTTL,
			SWR:      cfg.CacheSWR,
			// Unknown-agent errors are deterministic until new data
			// arrives: cache the 404 for one TTL so repeated probes for
			// absent agents stop reaching the backend.
			NegTTL:         cfg.CacheTTL,
			CacheableError: func(err error) bool { return errors.Is(err, netsum.ErrUnknownAgent) },
			Clock:          cfg.Clock,
		}),
		mux:  http.NewServeMux(),
		reg:  cfg.Metrics,
		stop: make(chan struct{}),
	}
	s.batchKeys = s.reg.Histogram("queryd_batch_keys",
		"Keys per /v2/query batch request.", nil, telemetry.SizeBuckets())
	s.reg.RegisterCounter("queryd_checkpoints_total", "Checkpoint attempts by outcome.",
		telemetry.Labels{"result": "ok"}, &s.ckptOK)
	s.reg.RegisterCounter("queryd_checkpoints_total", "Checkpoint attempts by outcome.",
		telemetry.Labels{"result": "error"}, &s.ckptFailed)
	s.ckptSeconds = s.reg.Histogram("queryd_checkpoint_duration_seconds",
		"Latency of one whole checkpoint write.", nil, telemetry.LatencyBuckets())
	s.cache.RegisterMetrics(s.reg, "queryd_cache")
	// Backends register the instruments their Status counters already read:
	// one source of truth behind both /v1/status JSON and /metrics.
	if rm, ok := b.(interface{ RegisterMetrics(*telemetry.Registry) }); ok {
		rm.RegisterMetrics(s.reg)
	}
	if cfg.CheckpointPath != "" {
		cp, ok := b.(Checkpointer)
		if !ok {
			return nil, fmt.Errorf("queryd: backend %T cannot checkpoint", b)
		}
		// Refuse configurations that could never persist state, instead of
		// logging a failed checkpoint every interval forever.
		if err := cp.CanCheckpoint(); err != nil {
			return nil, fmt.Errorf("queryd: checkpointing configured but impossible: %w", err)
		}
		// A crash mid-checkpoint leaves a .tmp file beside the real one;
		// sweep them now so they cannot accumulate across restarts.
		if err := CleanCheckpointTemps(cfg.CheckpointPath); err != nil {
			return nil, fmt.Errorf("queryd: cleaning stale checkpoint temps: %w", err)
		}
	}
	// Handlers register without method patterns so that method mismatches
	// get the same JSON error envelope as every other failure, instead of
	// the mux's plain-text 405. Each endpoint gets its own request-duration
	// histogram series (one family, labeled by endpoint).
	s.handle("/v2/query", "POST", s.handleExec)
	s.handle("/v2/ingest", "POST", s.handleIngest)
	s.handle("/v2/delta", "GET", s.handleDelta)
	s.handle("/v2/replicate", "POST", s.handleReplicate)
	s.handle("/v1/point", "GET", s.handlePoint)
	s.handle("/v1/window", "GET", s.handleWindow)
	s.handle("/v1/topk", "GET", s.handleTopK)
	s.handle("/v1/status", "GET", s.handleStatus)
	s.handle("/v1/insert", "POST", s.handleInsert)
	s.handle("/v1/checkpoint", "POST", s.handleCheckpoint)
	if !cfg.DisableMetrics {
		s.handle("/metrics", "GET", telhttp.Handler(s.reg).ServeHTTP)
	}
	s.mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		httpError(w, http.StatusNotFound, "not_found",
			fmt.Errorf("no such endpoint %s", r.URL.Path))
	})
	if cfg.CheckpointPath != "" && cfg.CheckpointEvery > 0 {
		s.wg.Add(1)
		go s.checkpointLoop()
	}
	return s, nil
}

// handle mounts h at path behind the method guard, wrapped with that
// endpoint's request-duration histogram. The histogram is allocated at
// registration (startup), so serving records with one Observe — no
// allocation, no registry lock — per request.
func (s *Server) handle(path, want string, h http.HandlerFunc) {
	hist := s.reg.Histogram("queryd_request_duration_seconds",
		"Request latency by endpoint, method mismatches included.",
		telemetry.Labels{"endpoint": path}, telemetry.LatencyBuckets())
	guarded := method(want, h)
	s.mux.HandleFunc(path, func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		guarded(w, r)
		hist.ObserveDuration(time.Since(start))
	})
}

// method wraps a handler with a JSON 405 for every other HTTP method.
func method(want string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if r.Method != want {
			httpError(w, http.StatusMethodNotAllowed, "method_not_allowed",
				fmt.Errorf("%s requires %s, got %s", r.URL.Path, want, r.Method))
			return
		}
		h(w, r)
	}
}

// Handler returns the HTTP handler to mount.
func (s *Server) Handler() http.Handler { return s.mux }

// Close stops background checkpointing, writing a final checkpoint when
// one is configured.
func (s *Server) Close() error {
	var err error
	s.closeOnce.Do(func() {
		close(s.stop)
		s.wg.Wait()
		if s.cfg.CheckpointPath != "" {
			err = s.CheckpointNow()
		}
	})
	return err
}

func (s *Server) logf(format string, args ...any) {
	if s.cfg.Logf != nil {
		s.cfg.Logf(format, args...)
	}
}

// CheckpointNow writes one checkpoint to the configured path. For
// WAL-backed backends the checkpoint header records the backend's cut LSN,
// and once the file is durable the backend is told to truncate its WAL
// through that cut — the incremental-checkpoint loop: log grows, checkpoint
// lands, log shrinks.
func (s *Server) CheckpointNow() error {
	cp, ok := s.b.(Checkpointer)
	if !ok {
		return errors.New("queryd: backend does not support checkpointing")
	}
	if s.cfg.CheckpointPath == "" {
		return errors.New("queryd: no checkpoint path configured")
	}
	s.ckptRun.Lock()
	defer s.ckptRun.Unlock()
	var lsn func() uint64
	wb, walBacked := s.b.(WALBacked)
	if walBacked {
		lsn = wb.CutLSN
	}
	start := time.Now()
	err := WriteCheckpoint(s.cfg.CheckpointPath, s.cfg.Algo, s.cfg.Spec, cp.Checkpoint, lsn)
	s.ckptSeconds.ObserveDuration(time.Since(start))
	if err == nil {
		s.ckptOK.Inc()
	} else {
		s.ckptFailed.Inc()
	}
	if err == nil && walBacked {
		if terr := wb.CheckpointCommitted(); terr != nil {
			// The checkpoint itself is durable; only the log GC failed. Not a
			// checkpoint failure — the next commit retries the truncation —
			// but worth a diagnostic.
			s.logf("queryd: wal truncation after checkpoint: %v", terr)
		}
	}
	s.ckptMu.Lock()
	s.lastCkpt = time.Now()
	s.ckptErr = err
	s.ckptMu.Unlock()
	return err
}

func (s *Server) checkpointLoop() {
	defer s.wg.Done()
	t := time.NewTicker(s.cfg.CheckpointEvery)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			if err := s.CheckpointNow(); err != nil {
				s.logf("queryd: periodic checkpoint: %v", err)
			}
		case <-s.stop:
			return
		}
	}
}

// QueryResponse is the JSON body of v1 point and window queries. When
// Certified, truth lies in [Lower, Upper] for the history the answer
// covers; MPE is the certified error radius Upper − Lower.
type QueryResponse struct {
	Key       uint64 `json:"key"`
	Est       uint64 `json:"est"`
	MPE       uint64 `json:"mpe"`
	Lower     uint64 `json:"lower"`
	Upper     uint64 `json:"upper"`
	Certified bool   `json:"certified"`
	// Window and Covered report the requested and answered sealed-epoch
	// spans of window queries (both 0 for cumulative point answers).
	Window  int `json:"window,omitempty"`
	Covered int `json:"covered,omitempty"`
	// Agent scopes an agent-window answer (absent for global ones).
	Agent      uint64 `json:"agent,omitempty"`
	Generation uint64 `json:"generation"`
	Cached     bool   `json:"cached"`
}

func (r QueryResponse) withCached(c bool) any { r.Cached = c; return r }

// TopKItem is one heavy hitter with its certified interval.
type TopKItem struct {
	Key       uint64 `json:"key"`
	Est       uint64 `json:"est"`
	MPE       uint64 `json:"mpe"`
	Lower     uint64 `json:"lower"`
	Certified bool   `json:"certified"`
}

// TopKResponse is the JSON body of /v1/topk.
type TopKResponse struct {
	K          int        `json:"k"`
	Items      []TopKItem `json:"items"`
	Generation uint64     `json:"generation"`
	Cached     bool       `json:"cached"`
}

func (r TopKResponse) withCached(c bool) any { r.Cached = c; return r }

// ExecResponse is the JSON body of /v2/query: the typed Answer plus cache
// observability. For point and window batches CachedKeys counts the keys
// served from the per-key cache (the misses were computed in one backend
// batch); for top-k, Cached reports a whole-answer hit.
type ExecResponse struct {
	query.Answer
	CachedKeys int  `json:"cached_keys"`
	Cached     bool `json:"cached"`
}

func (r ExecResponse) withCached(c bool) any { r.Cached = c; return r }

// cacheable is implemented by response types so a cached copy can be
// stamped without mutating the stored value.
type cacheable interface{ withCached(bool) any }

// CacheStats is the result cache's counter snapshot as it appears in
// /v1/status. It is rcache.Stats verbatim: the first eight fields keep the
// legacy JSON shape, and the policy-specific fields only appear when
// non-zero.
type CacheStats = rcache.Stats

// StatusResponse is the JSON body of /v1/status.
type StatusResponse struct {
	Backend    Status            `json:"backend"`
	Cache      CacheStats        `json:"cache"`
	Checkpoint *CheckpointStatus `json:"checkpoint,omitempty"`
}

// CheckpointStatus reports the most recent checkpoint attempt.
type CheckpointStatus struct {
	Path     string `json:"path"`
	LastTime string `json:"last_time,omitempty"`
	Error    string `json:"error,omitempty"`
}

// execEntry is one key's cached v2 answer: the estimate plus the answer
// metadata needed to rebuild a response from hits alone. covered marks
// entries born from a cluster answer with full KeyCoverage; entries from
// single-node backends leave it false and the response's KeyCoverage unset,
// matching the backend's own answers.
type execEntry struct {
	est       query.Estimate
	coverage  int
	certified bool
	source    string
	covered   bool
}

// execCacheKey labels one key of a v2 batch in the result cache. Kind,
// window, and agent are part of the identity: the same key means different
// things under different scopes.
func execCacheKey(req query.Request, key uint64) string {
	return fmt.Sprintf("x/%d/%d/%d/%d", req.Kind, req.Agent, req.Window, key)
}

// handleExec serves POST /v2/query: one typed query.Request batch. Point
// and window batches are cached per key under the generation-keyed cache,
// so a request whose keys partially hit only computes the misses — and
// computes them in a single backend batch, preserving the lock
// amortization end to end. Top-k answers cache whole, like v1.
func (s *Server) handleExec(w http.ResponseWriter, r *http.Request) {
	var req query.Request
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 8<<20))
	if err := dec.Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "bad_request", fmt.Errorf("decoding request: %w", err))
		return
	}
	if err := req.Validate(); err != nil {
		httpError(w, http.StatusBadRequest, "bad_request", err)
		return
	}
	if len(req.Keys) > s.cfg.MaxBatch {
		httpError(w, http.StatusBadRequest, "bad_request",
			fmt.Errorf("batch of %d keys exceeds this server's limit of %d", len(req.Keys), s.cfg.MaxBatch))
		return
	}
	s.batchKeys.Observe(float64(len(req.Keys)))
	if req.Kind == query.TopK {
		s.serveCached(w, fmt.Sprintf("x/topk/%d/%d", req.K, req.Window), func(gen uint64) (any, error) {
			ans, err := s.b.Execute(req)
			if err != nil {
				return nil, err
			}
			ans.Generation = gen
			return ExecResponse{Answer: ans}, nil
		})
		return
	}

	gen := s.b.Generation()
	epochal := s.b.Epochal()
	resp := ExecResponse{Answer: query.Answer{
		PerKey:     make([]query.Estimate, len(req.Keys)),
		Generation: gen,
		Certified:  true,
	}}
	cacheKeys := make([]string, len(req.Keys))
	for i, k := range req.Keys {
		cacheKeys[i] = execCacheKey(req, k)
	}
	cached, stale := s.cache.LookupMany(cacheKeys, gen)
	if len(stale) > 0 {
		// LookupMany handed this request the revalidation claim for these
		// expired-but-servable entries: refresh them off the request path,
		// in one backend batch, and let StoreMany discharge the claims.
		sub := req
		sub.Keys = make([]uint64, len(stale))
		refreshKeys := make([]string, len(stale))
		for j, i := range stale {
			sub.Keys[j] = req.Keys[i]
			refreshKeys[j] = cacheKeys[i]
		}
		go s.refreshExec(sub, refreshKeys, gen, epochal)
	}
	var missIdx []int
	var missKeys []uint64
	haveMeta := false
	coveredHits := 0
	for i, v := range cached {
		if v == nil {
			missIdx = append(missIdx, i)
			missKeys = append(missKeys, req.Keys[i])
			continue
		}
		e := v.(execEntry)
		resp.PerKey[i] = e.est
		resp.CachedKeys++
		resp.Certified = resp.Certified && e.certified
		if e.covered {
			coveredHits++
		}
		if !haveMeta {
			resp.Coverage, resp.Source, haveMeta = e.coverage, e.source, true
		}
	}
	if len(missKeys) > 0 {
		sub := req
		sub.Keys = missKeys
		ans, err := s.b.Execute(sub)
		if err != nil {
			s.execError(w, err)
			return
		}
		// The fresh batch's metadata wins: under one generation it agrees
		// with every immutable cached entry, and for live (TTL) answers it
		// is the most recent view.
		resp.Coverage, resp.Source = ans.Coverage, ans.Source
		resp.Certified = resp.Certified && ans.Certified
		if ans.KeyCoverage != 0 {
			// Cluster answer: blend the miss batch's coverage with the hits
			// (cached entries only exist with full coverage).
			resp.KeyCoverage = (float64(coveredHits) + ans.KeyCoverage*float64(len(missKeys))) /
				float64(len(req.Keys))
		}
		storeKeys := make([]string, len(missIdx))
		storeVals := make([]any, len(missIdx))
		for j, i := range missIdx {
			e := ans.PerKey[j]
			resp.PerKey[i] = e
			storeKeys[j] = cacheKeys[i]
			storeVals[j] = execEntry{
				est:       e,
				coverage:  ans.Coverage,
				certified: ans.Certified,
				source:    ans.Source,
				covered:   ans.KeyCoverage == 1,
			}
		}
		// A degraded cluster answer (a replica was down, keys went to lagged
		// fallbacks) must not outlive the outage in the cache: serve it once,
		// honestly marked, and recompute next time.
		if ans.KeyCoverage == 0 || ans.KeyCoverage == 1 {
			s.cache.StoreMany(storeKeys, gen, epochal, storeVals)
		}
	} else if coveredHits > 0 && coveredHits == resp.CachedKeys {
		resp.KeyCoverage = 1
	}
	writeJSON(w, http.StatusOK, resp)
}

// refreshExec is the batch half of stale-while-revalidate: recompute the
// claimed stale keys in one backend batch and store the results under the
// same coverage gating as the foreground path. A failed or degraded
// (partial-coverage) refresh stores nothing — the stale entries keep
// serving until their SWR window lapses, then miss normally.
func (s *Server) refreshExec(sub query.Request, cacheKeys []string, gen uint64, epochal bool) {
	ans, err := s.b.Execute(sub)
	if err != nil || (ans.KeyCoverage != 0 && ans.KeyCoverage != 1) {
		return
	}
	vals := make([]any, len(cacheKeys))
	for j := range cacheKeys {
		vals[j] = execEntry{
			est:       ans.PerKey[j],
			coverage:  ans.Coverage,
			certified: ans.Certified,
			source:    ans.Source,
			covered:   ans.KeyCoverage == 1,
		}
	}
	s.cache.StoreMany(cacheKeys, gen, epochal, vals)
}

func (s *Server) handlePoint(w http.ResponseWriter, r *http.Request) {
	key, err := parseUint(r, "key", true, 0)
	if err != nil {
		httpError(w, http.StatusBadRequest, "bad_request", err)
		return
	}
	s.serveCached(w, fmt.Sprintf("p/%d", key), func(gen uint64) (any, error) {
		ans, err := s.b.Execute(query.Request{Kind: query.Point, Keys: []uint64{key}})
		if err != nil {
			return nil, err
		}
		return s.toResponse(ans, gen), nil
	})
}

func (s *Server) handleWindow(w http.ResponseWriter, r *http.Request) {
	key, err := parseUint(r, "key", true, 0)
	if err != nil {
		httpError(w, http.StatusBadRequest, "bad_request", err)
		return
	}
	n, err := parseUint(r, "n", false, 1)
	if err != nil {
		httpError(w, http.StatusBadRequest, "bad_request", err)
		return
	}
	req := query.Request{Kind: query.Window, Keys: []uint64{key}, Window: int(n)}
	if agentStr := r.URL.Query().Get("agent"); agentStr != "" {
		req.Agent, err = strconv.ParseUint(agentStr, 10, 64)
		if err != nil {
			httpError(w, http.StatusBadRequest, "bad_request", fmt.Errorf("agent: %w", err))
			return
		}
	}
	if err := req.Validate(); err != nil {
		httpError(w, http.StatusBadRequest, "bad_request", err)
		return
	}
	s.serveCached(w, fmt.Sprintf("w/%d/%d/%d", req.Agent, key, n), func(gen uint64) (any, error) {
		ans, err := s.b.Execute(req)
		if err != nil {
			return nil, err
		}
		resp := s.toResponse(ans, gen)
		resp.Window = int(n)
		resp.Agent = req.Agent
		return resp, nil
	})
}

func (s *Server) handleTopK(w http.ResponseWriter, r *http.Request) {
	k, err := parseUint(r, "k", false, 10)
	if err != nil {
		httpError(w, http.StatusBadRequest, "bad_request", err)
		return
	}
	// Each returned item carries a certified interval read under the same
	// snapshot, so k is bounded well below the cache and tracked-set sizes;
	// the composed answer is cached like any other.
	if k < 1 || k > query.MaxTopK {
		httpError(w, http.StatusBadRequest, "bad_request",
			fmt.Errorf("k=%d out of range [1, %d]", k, query.MaxTopK))
		return
	}
	s.serveCached(w, fmt.Sprintf("t/%d", k), func(gen uint64) (any, error) {
		ans, err := s.b.Execute(query.Request{Kind: query.TopK, K: int(k)})
		if err != nil {
			return nil, err
		}
		resp := TopKResponse{K: int(k), Items: make([]TopKItem, 0, len(ans.PerKey)), Generation: gen}
		for _, e := range ans.PerKey {
			resp.Items = append(resp.Items, TopKItem{
				Key:       e.Key,
				Est:       e.Est,
				MPE:       e.Est - e.Lower,
				Lower:     e.Lower,
				Certified: ans.Certified,
			})
		}
		return resp, nil
	})
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	resp := StatusResponse{Backend: s.b.Status(), Cache: s.cache.Stats()}
	if s.cfg.CheckpointPath != "" {
		cs := &CheckpointStatus{Path: s.cfg.CheckpointPath}
		s.ckptMu.Lock()
		if !s.lastCkpt.IsZero() {
			cs.LastTime = s.lastCkpt.UTC().Format(time.RFC3339)
		}
		if s.ckptErr != nil {
			cs.Error = s.ckptErr.Error()
		}
		s.ckptMu.Unlock()
		resp.Checkpoint = cs
	}
	writeJSON(w, http.StatusOK, resp)
}

// insertRequest is the POST /v1/insert and /v2/ingest body: the items plus
// (v2) the typed batch's source attribution and epoch tag. A zero or
// omitted item value counts as 1, the frequency-estimation default.
type insertRequest struct {
	Items []struct {
		Key   uint64 `json:"key"`
		Value uint64 `json:"value"`
	} `json:"items"`
	Source uint64 `json:"source"`
	Epoch  uint64 `json:"epoch"`
}

// decodeIngest parses an ingest body into the typed batch. Reported errors
// are the client's (bad_request).
func decodeIngest(w http.ResponseWriter, r *http.Request) (ingest.Batch, bool) {
	var req insertRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 32<<20))
	if err := dec.Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "bad_request", fmt.Errorf("decoding items: %w", err))
		return ingest.Batch{}, false
	}
	items := make([]stream.Item, len(req.Items))
	for i, it := range req.Items {
		v := it.Value
		if v == 0 {
			v = 1
		}
		items[i] = stream.Item{Key: it.Key, Value: v}
	}
	return ingest.Batch{Items: items, Source: req.Source, Epoch: req.Epoch}, true
}

// ingester resolves the backend's write surface, answering the JSON 501
// itself when there is none.
func (s *Server) ingester(w http.ResponseWriter) (Ingester, bool) {
	ing, ok := s.b.(Ingester)
	if !ok {
		httpError(w, http.StatusNotImplemented, "unsupported",
			errors.New("backend does not ingest over HTTP (collector backends ingest through the agent protocol)"))
		return nil, false
	}
	return ing, true
}

// handleInsert serves POST /v1/insert. The response reports what actually
// happened to the items — "ingested" is the accepted count, and a full
// queue under the drop backpressure policy shows up as "dropped" instead of
// a bare 200 that pretends everything was applied.
func (s *Server) handleInsert(w http.ResponseWriter, r *http.Request) {
	ing, ok := s.ingester(w)
	if !ok {
		return
	}
	b, ok := decodeIngest(w, r)
	if !ok {
		return
	}
	ack := ing.Ingest(b)
	writeJSON(w, http.StatusOK, map[string]any{
		"ingested":   ack.Accepted,
		"dropped":    ack.Dropped,
		"generation": ack.Generation,
	})
}

// handleIngest serves POST /v2/ingest: one typed ingest.Batch — items plus
// source attribution and an optional epoch tag — answered with the Ack
// verbatim. The write-side sibling of /v2/query.
func (s *Server) handleIngest(w http.ResponseWriter, r *http.Request) {
	ing, ok := s.ingester(w)
	if !ok {
		return
	}
	b, ok := decodeIngest(w, r)
	if !ok {
		return
	}
	writeJSON(w, http.StatusOK, ing.Ingest(b))
}

func (s *Server) handleCheckpoint(w http.ResponseWriter, r *http.Request) {
	cp, ok := s.b.(Checkpointer)
	if !ok || s.cfg.CheckpointPath == "" {
		httpError(w, http.StatusNotImplemented, "unsupported",
			errors.New("queryd: checkpointing not configured (backend support and -checkpoint path required)"))
		return
	}
	if err := cp.CanCheckpoint(); err != nil {
		httpError(w, http.StatusNotImplemented, "unsupported", err)
		return
	}
	start := time.Now()
	if err := s.CheckpointNow(); err != nil {
		// Support was verified above: what failed is the write itself, a
		// retryable server-side condition, not a missing capability.
		httpError(w, http.StatusInternalServerError, "internal", err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"path":       s.cfg.CheckpointPath,
		"elapsed_ms": time.Since(start).Milliseconds(),
	})
}

// toResponse shapes a single-key Answer into the v1 response, stamping the
// generation the request was admitted under.
func (s *Server) toResponse(ans query.Answer, gen uint64) QueryResponse {
	e := ans.PerKey[0]
	return QueryResponse{
		Key:        e.Key,
		Est:        e.Est,
		MPE:        e.Est - e.Lower,
		Lower:      e.Lower,
		Upper:      e.Upper,
		Certified:  ans.Certified,
		Covered:    ans.Coverage,
		Generation: gen,
	}
}

// serveCached runs compute through the epoch-aware cache and writes the
// JSON answer. Sealed-only backends cache immutably per generation; live
// backends get the short TTL. The generation is read exactly once and
// passed to compute, so the cache key and the response's generation field
// always agree even when a window seals mid-request (the answer may then
// reflect the newer sealed set — still a certified interval — but it is
// labeled and keyed consistently).
func (s *Server) serveCached(w http.ResponseWriter, key string, compute func(gen uint64) (any, error)) {
	gen := s.b.Generation()
	val, cached, err := s.cache.Do(key, gen, s.b.Epochal(), func() (any, error) { return compute(gen) })
	if err != nil {
		s.execError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, val.(cacheable).withCached(cached))
}

// execError maps a backend refusal onto the JSON error envelope: requests
// the query plane rejects are the client's fault, an unknown agent is a
// missing resource, a transient refusal is 503 (retry elsewhere — a cluster
// router's cue to try another replica), a backend that lost acked writes is
// a hard 500 no retry will fix, and everything else is a capability the
// backend does not have. Keeping 503 and 500 distinct is load-bearing: a
// router that treated them alike would either hammer a broken node or fail
// over away from a healthy-but-warming one.
func (s *Server) execError(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, netsum.ErrUnknownAgent):
		httpError(w, http.StatusNotFound, "not_found", err)
	case errors.Is(err, query.ErrBadKind) || errors.Is(err, query.ErrNoKeys) ||
		errors.Is(err, query.ErrTooManyKeys) || errors.Is(err, query.ErrBadWindow) ||
		errors.Is(err, query.ErrBadK) || errors.Is(err, query.ErrAgentScope):
		httpError(w, http.StatusBadRequest, "bad_request", err)
	case errors.Is(err, query.ErrUnavailable):
		httpError(w, http.StatusServiceUnavailable, "unavailable", err)
	case errors.Is(err, ErrLostWrites):
		httpError(w, http.StatusInternalServerError, "internal", err)
	default:
		httpError(w, http.StatusNotImplemented, "unsupported", err)
	}
}

func parseUint(r *http.Request, name string, required bool, def uint64) (uint64, error) {
	v := r.URL.Query().Get(name)
	if v == "" {
		if required {
			return 0, fmt.Errorf("missing query parameter %q", name)
		}
		return def, nil
	}
	u, err := strconv.ParseUint(v, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("%s: %w", name, err)
	}
	return u, nil
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(v)
}

// ErrorBody is the JSON error envelope every endpoint answers failures
// with: {"error":{"code":"...","message":"..."}}. Codes are stable
// machine-readable labels; messages are for humans.
type ErrorBody struct {
	Error ErrorDetail `json:"error"`
}

// ErrorDetail carries one error's code and message.
type ErrorDetail struct {
	Code    string `json:"code"`
	Message string `json:"message"`
}

func httpError(w http.ResponseWriter, status int, code string, err error) {
	writeJSON(w, status, ErrorBody{Error: ErrorDetail{Code: code, Message: err.Error()}})
}
