package queryd

import (
	"container/list"
	"strconv"
	"sync"
	"time"

	"repro/internal/telemetry"
)

// Cache is the epoch-aware result cache: a size-bounded LRU whose entries
// are keyed by (query, sealed-set generation) and collapsed through a
// singleflight layer so concurrent identical queries compute once.
//
// Two freshness regimes coexist:
//
//   - Immutable entries (epochal backends): an answer derived only from
//     sealed windows cannot change while the generation holds, so it caches
//     with no TTL. When a new window seals, the generation advances and the
//     whole older generation is invalidated at once — the cache drops those
//     entries on the first access that observes the new generation.
//   - TTL entries (live, cumulative backends): the answer drifts with every
//     ingested batch, so it expires after a short TTL. The certified
//     interval stays a correct interval for the state it was computed from,
//     which is what makes serving it safe — staleness costs freshness,
//     never soundness.
type Cache struct {
	capacity int
	ttl      time.Duration
	clock    func() time.Time

	mu       sync.Mutex
	gen      uint64 // highest generation observed
	lru      *list.List
	entries  map[string]*list.Element
	inflight map[string]*flight

	// Counters are telemetry instruments (single atomic words) so the
	// cache's /v1/status JSON and its Prometheus series (RegisterMetrics)
	// read the same source of truth. All increments happen under c.mu; the
	// atomic representation only buys lock-free scrapes.
	hits          telemetry.Counter
	misses        telemetry.Counter
	coalesced     telemetry.Counter
	evictions     telemetry.Counter
	invalidations telemetry.Counter
}

// cacheEntry is one stored answer. A zero expires means immutable: valid
// for as long as its generation is current.
type cacheEntry struct {
	key     string
	gen     uint64
	val     any
	expires time.Time
}

// flight is one in-progress computation; waiters block on done and share
// the result.
type flight struct {
	done chan struct{}
	val  any
	err  error
}

// NewCache builds a cache holding up to capacity entries, expiring mutable
// entries after ttl. clock defaults to wall time.
func NewCache(capacity int, ttl time.Duration, clock func() time.Time) *Cache {
	if capacity < 1 {
		capacity = 1
	}
	if clock == nil {
		clock = time.Now
	}
	return &Cache{
		capacity: capacity,
		ttl:      ttl,
		clock:    clock,
		lru:      list.New(),
		entries:  make(map[string]*list.Element),
		inflight: make(map[string]*flight),
	}
}

// Do returns the cached answer for key at generation gen, computing it at
// most once across concurrent callers on a miss. immutable marks answers
// derived only from sealed state (no TTL). cached reports whether the
// caller was served without running compute — a fresh entry or a collapsed
// concurrent flight. Errors are never cached.
//
// Entries and in-flight computations are stored under (key, gen), not key
// alone: a request still holding a pre-seal generation can neither evict
// the current generation's entry nor join (or be joined by) a flight from
// a different generation — it recomputes under its own label, and its
// soon-unreachable entry is reclaimed by the next invalidation sweep.
func (c *Cache) Do(key string, gen uint64, immutable bool, compute func() (any, error)) (val any, cached bool, err error) {
	genKey := key + "@" + strconv.FormatUint(gen, 10)
	c.mu.Lock()
	if gen > c.gen {
		c.invalidate(gen)
	}
	if el, ok := c.entries[genKey]; ok {
		e := el.Value.(*cacheEntry)
		if e.expires.IsZero() || e.expires.After(c.clock()) {
			c.hits.Inc()
			c.lru.MoveToFront(el)
			c.mu.Unlock()
			return e.val, true, nil
		}
		c.drop(el)
	}
	if f, ok := c.inflight[genKey]; ok {
		c.coalesced.Inc()
		c.hits.Inc()
		c.mu.Unlock()
		<-f.done
		return f.val, true, f.err
	}
	f := &flight{done: make(chan struct{})}
	c.inflight[genKey] = f
	c.misses.Inc()
	c.mu.Unlock()

	f.val, f.err = compute()
	close(f.done)

	c.mu.Lock()
	delete(c.inflight, genKey)
	if f.err == nil {
		e := &cacheEntry{key: genKey, gen: gen, val: f.val}
		if !immutable {
			e.expires = c.clock().Add(c.ttl)
		}
		c.entries[genKey] = c.lru.PushFront(e)
		for c.lru.Len() > c.capacity {
			c.evictions.Inc()
			c.drop(c.lru.Back())
		}
	}
	c.mu.Unlock()
	return f.val, false, f.err
}

// LookupMany probes every key at generation gen without computing
// anything — the probe half of the batch path, which collapses all of a
// request's misses into one backend call instead of singleflighting them
// individually. The whole batch is served under one mutex hold, so cache
// probing never undoes the lock amortization the batch exists for. Returns
// one value per key, nil marking a miss; counts hits and misses, dropping
// expired and superseded entries on the way.
func (c *Cache) LookupMany(keys []string, gen uint64) []any {
	out := make([]any, len(keys))
	suffix := "@" + strconv.FormatUint(gen, 10)
	now := c.clock()
	c.mu.Lock()
	defer c.mu.Unlock()
	if gen > c.gen {
		c.invalidate(gen)
	}
	for i, key := range keys {
		el, ok := c.entries[key+suffix]
		if ok {
			e := el.Value.(*cacheEntry)
			if e.expires.IsZero() || e.expires.After(now) {
				c.hits.Inc()
				c.lru.MoveToFront(el)
				out[i] = e.val
				continue
			}
			c.drop(el)
		}
		c.misses.Inc()
	}
	return out
}

// StoreMany caches computed answers under (keys[i], gen) — the fill half
// of the batch path, one mutex hold for the whole batch. immutable follows
// the same regimes as Do; existing entries are replaced.
func (c *Cache) StoreMany(keys []string, gen uint64, immutable bool, vals []any) {
	suffix := "@" + strconv.FormatUint(gen, 10)
	c.mu.Lock()
	defer c.mu.Unlock()
	if gen > c.gen {
		c.invalidate(gen)
	}
	var expires time.Time
	if !immutable {
		expires = c.clock().Add(c.ttl)
	}
	for i, key := range keys {
		genKey := key + suffix
		if el, ok := c.entries[genKey]; ok {
			c.drop(el)
		}
		e := &cacheEntry{key: genKey, gen: gen, val: vals[i], expires: expires}
		c.entries[genKey] = c.lru.PushFront(e)
	}
	for c.lru.Len() > c.capacity {
		c.evictions.Inc()
		c.drop(c.lru.Back())
	}
}

// invalidate advances the observed generation and drops every entry from
// older generations wholesale — the new sealed set makes them
// unreachable, so holding them would only squat LRU capacity. Callers
// hold c.mu.
func (c *Cache) invalidate(gen uint64) {
	c.gen = gen
	var next *list.Element
	for el := c.lru.Front(); el != nil; el = next {
		next = el.Next()
		if el.Value.(*cacheEntry).gen < gen {
			c.invalidations.Inc()
			c.drop(el)
		}
	}
}

// drop removes one entry. Callers hold c.mu.
func (c *Cache) drop(el *list.Element) {
	delete(c.entries, el.Value.(*cacheEntry).key)
	c.lru.Remove(el)
}

// CacheStats is a point-in-time counter snapshot for /v1/status and the
// serve experiment. HitRate folds collapsed concurrent flights into hits:
// every request that did not run the backend query itself was served by
// the cache layer.
type CacheStats struct {
	Entries       int     `json:"entries"`
	Hits          uint64  `json:"hits"`
	Misses        uint64  `json:"misses"`
	Coalesced     uint64  `json:"coalesced"`
	Evictions     uint64  `json:"evictions"`
	Invalidations uint64  `json:"invalidations"`
	Generation    uint64  `json:"generation"`
	HitRate       float64 `json:"hit_rate"`
}

// Stats returns current cache counters.
func (c *Cache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	st := CacheStats{
		Entries:       c.lru.Len(),
		Hits:          c.hits.Value(),
		Misses:        c.misses.Value(),
		Coalesced:     c.coalesced.Value(),
		Evictions:     c.evictions.Value(),
		Invalidations: c.invalidations.Value(),
		Generation:    c.gen,
	}
	if total := st.Hits + st.Misses; total > 0 {
		st.HitRate = float64(st.Hits) / float64(total)
	}
	return st
}

// RegisterMetrics exposes the cache's instruments on reg under the
// queryd_cache_* namespace. Counters are the same words Stats reads;
// entries and the observed generation are sampled at scrape time under a
// brief c.mu hold.
func (c *Cache) RegisterMetrics(reg *telemetry.Registry) {
	reg.RegisterCounter("queryd_cache_hits_total", "Requests served from the cache (including coalesced flights).", nil, &c.hits)
	reg.RegisterCounter("queryd_cache_misses_total", "Requests that ran the backend query.", nil, &c.misses)
	reg.RegisterCounter("queryd_cache_coalesced_total", "Requests collapsed onto an in-flight identical computation.", nil, &c.coalesced)
	reg.RegisterCounter("queryd_cache_evictions_total", "Entries evicted by LRU capacity.", nil, &c.evictions)
	reg.RegisterCounter("queryd_cache_invalidations_total", "Entries dropped by generation advances.", nil, &c.invalidations)
	reg.GaugeFunc("queryd_cache_entries", "Entries currently cached.", nil, func() float64 {
		c.mu.Lock()
		defer c.mu.Unlock()
		return float64(c.lru.Len())
	})
	reg.GaugeFunc("queryd_cache_generation", "Highest sealed-set generation the cache has observed.", nil, func() float64 {
		c.mu.Lock()
		defer c.mu.Unlock()
		return float64(c.gen)
	})
}
