package queryd

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/ingest"
	"repro/internal/query"
	"repro/internal/sketch"
	"repro/internal/stream"
)

// testClock is an atomically advanced clock for ring backends, so epochs
// seal when the test says so instead of whenever the race detector makes
// wall time crawl.
type testClock struct{ nanos atomic.Int64 }

func (c *testClock) clock() time.Time        { return time.Unix(0, c.nanos.Load()) }
func (c *testClock) advance(d time.Duration) { c.nanos.Add(int64(d)) }

// pipelinedBackends builds the three write-surface shapes the ingest plane
// serves — flat, sharded, and ring-backed — all through the async pipeline.
// The returned seal func makes every ring epoch boundary pass (no-op for
// cumulative backends).
func pipelinedBackends(t *testing.T) map[string]struct {
	b    *SketchBackend
	seal func()
} {
	t.Helper()
	tuning := ingest.Tuning{Workers: 4, FlushItems: 1 << 10}
	clk := &testClock{}
	interval := time.Minute
	out := make(map[string]struct {
		b    *SketchBackend
		seal func()
	})
	for name, cfg := range map[string]SketchBackendConfig{
		"flat":    {Algo: "Ours", Spec: sketch.Spec{MemoryBytes: 1 << 19, Lambda: 25, Seed: 2}, Ingest: &tuning},
		"sharded": {Algo: "Ours", Spec: sketch.Spec{MemoryBytes: 1 << 19, Lambda: 25, Seed: 2, Shards: 8}, Ingest: &tuning},
		"ring": {Algo: "Ours", Spec: sketch.Spec{MemoryBytes: 1 << 19, Lambda: 25, Seed: 2},
			Epoch: interval, Windows: 64, Clock: clk.clock, Ingest: &tuning},
	} {
		b, err := NewSketchBackendFrom(cfg)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		t.Cleanup(func() { b.Close() })
		seal := func() {}
		if cfg.Epoch > 0 {
			seal = func() { clk.advance(interval) }
		}
		out[name] = struct {
			b    *SketchBackend
			seal func()
		}{b, seal}
	}
	return out
}

// TestIngestQueryInterleaving is the ingest/query race matrix: concurrent
// pipeline flushes vs. typed query.Request execution on flat, sharded, and
// ring-backed sketches. Mid-flight answers must stay well-formed; after a
// full drain the certified bounds must contain the exact counts. Run under
// -race in CI.
func TestIngestQueryInterleaving(t *testing.T) {
	s := stream.Zipf(30_000, 2_000, 1.1, 11)
	for name, pb := range pipelinedBackends(t) {
		b, seal := pb.b, pb.seal
		t.Run(name, func(t *testing.T) {
			const writers = 4
			var wg sync.WaitGroup
			for w := 0; w < writers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					for lo := w * 512; lo < s.Len(); lo += writers * 512 {
						hi := min(lo+512, s.Len())
						b.Ingest(ingest.Batch{Items: s.Items[lo:hi], Source: uint64(w + 1)})
					}
				}(w)
			}
			req := query.Request{Kind: query.Point, Keys: []uint64{s.Items[0].Key, s.Items[1].Key, 424242}}
			if b.Epochal() {
				req = query.Request{Kind: query.Window, Keys: req.Keys, Window: 16}
			}
			for i := 0; i < 40; i++ {
				ans, err := b.Execute(req)
				if err != nil {
					t.Fatal(err)
				}
				for _, e := range ans.PerKey {
					if e.Lower > e.Est || e.Est > e.Upper {
						t.Fatalf("malformed interval mid-ingest: %+v", e)
					}
				}
			}
			wg.Wait()

			if b.Epochal() {
				// Cross the epoch boundary so the traffic seals; the read
				// path drains the pipeline before sealing, and Execute
				// drains again before answering.
				seal()
			}
			truth := s.Truth()
			keys := make([]uint64, 0, len(truth))
			for k := range truth {
				keys = append(keys, k)
				if len(keys) == query.MaxBatchKeys {
					break
				}
			}
			final := query.Request{Kind: query.Point, Keys: keys}
			if b.Epochal() {
				final = query.Request{Kind: query.Window, Keys: keys, Window: 64}
			}
			ans, err := b.Execute(final)
			if err != nil {
				t.Fatal(err)
			}
			if !ans.Certified {
				t.Fatal("final answer not certified")
			}
			for _, e := range ans.PerKey {
				if exact := truth[e.Key]; exact < e.Lower || exact > e.Upper {
					t.Fatalf("key %d: certified interval [%d, %d] misses exact %d",
						e.Key, e.Lower, e.Upper, exact)
				}
			}
		})
	}
}

// TestPipelinedBackendEquivalence proves pipeline-ingested backend state
// answers queries identically (within certified bounds) to sequential
// synchronous ingest, across the flat and sharded shapes.
func TestPipelinedBackendEquivalence(t *testing.T) {
	s := stream.Zipf(30_000, 2_000, 1.1, 13)
	spec := sketch.Spec{MemoryBytes: 1 << 19, Lambda: 25, Seed: 4, Shards: 8}
	sync1, err := NewSketchBackend("Ours", spec, 0, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	sync1.Ingest(ingest.Batch{Items: s.Items})

	tuning := ingest.Tuning{Workers: 4, FlushItems: 1 << 10}
	piped, err := NewSketchBackendFrom(SketchBackendConfig{Algo: "Ours", Spec: spec, Ingest: &tuning})
	if err != nil {
		t.Fatal(err)
	}
	defer piped.Close()
	for lo := 0; lo < s.Len(); lo += 900 {
		piped.Ingest(ingest.Batch{Items: s.Items[lo:min(lo+900, s.Len())]})
	}

	truth := s.Truth()
	keys := make([]uint64, 0, len(truth))
	for k := range truth {
		keys = append(keys, k)
		if len(keys) == query.MaxBatchKeys {
			break
		}
	}
	req := query.Request{Kind: query.Point, Keys: keys}
	a1, err := sync1.Execute(req)
	if err != nil {
		t.Fatal(err)
	}
	a2, err := piped.Execute(req)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a1.PerKey {
		exact := truth[a1.PerKey[i].Key]
		for which, e := range map[string]query.Estimate{"sequential": a1.PerKey[i], "pipelined": a2.PerKey[i]} {
			if exact < e.Lower || exact > e.Upper {
				t.Fatalf("%s key %d: interval [%d, %d] misses exact %d", which, e.Key, e.Lower, e.Upper, exact)
			}
		}
	}
}

// TestInsertReportsApplied pins the /v1/insert fix: the response body says
// how many items were accepted and dropped, and with a drop-policy pipeline
// a refused batch is reported instead of silently 200-ed away.
func TestInsertReportsApplied(t *testing.T) {
	tuning := ingest.Tuning{Workers: 1, FlushItems: 1 << 20}
	b, err := NewSketchBackendFrom(SketchBackendConfig{
		Algo: "Ours", Spec: sketch.Spec{MemoryBytes: 1 << 18, Lambda: 25, Seed: 1}, Ingest: &tuning,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	srv, err := New(b, Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp, err := http.Post(ts.URL+"/v1/insert", "application/json",
		strings.NewReader(`{"items":[{"key":7,"value":3},{"key":8}]}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var body struct {
		Ingested   int    `json:"ingested"`
		Dropped    int    `json:"dropped"`
		Generation uint64 `json:"generation"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK || body.Ingested != 2 || body.Dropped != 0 {
		t.Fatalf("insert answered %d %+v, want 200 with 2 ingested", resp.StatusCode, body)
	}
}

// TestIngestV2Endpoint drives POST /v2/ingest end to end: typed batches
// (source + epoch tag) in, Ack JSON out, state queryable after.
func TestIngestV2Endpoint(t *testing.T) {
	tuning := ingest.Tuning{Workers: 2}
	b, err := NewSketchBackendFrom(SketchBackendConfig{
		Algo: "Ours", Spec: sketch.Spec{MemoryBytes: 1 << 18, Lambda: 25, Seed: 1}, Ingest: &tuning,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	srv, err := New(b, Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp, err := http.Post(ts.URL+"/v2/ingest", "application/json",
		strings.NewReader(`{"items":[{"key":42,"value":10},{"key":42,"value":5}],"source":3,"epoch":1}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var ack ingest.Ack
	if err := json.NewDecoder(resp.Body).Decode(&ack); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK || ack.Accepted != 2 || ack.Dropped != 0 {
		t.Fatalf("/v2/ingest answered %d %+v, want 200 with 2 accepted", resp.StatusCode, ack)
	}

	q, err := http.Get(ts.URL + "/v1/point?key=42")
	if err != nil {
		t.Fatal(err)
	}
	defer q.Body.Close()
	var qr QueryResponse
	if err := json.NewDecoder(q.Body).Decode(&qr); err != nil {
		t.Fatal(err)
	}
	if qr.Lower > 15 || qr.Upper < 15 {
		t.Fatalf("point after /v2/ingest: interval [%d, %d] misses 15", qr.Lower, qr.Upper)
	}

	// Method and capability errors keep the JSON envelope.
	g, err := http.Get(ts.URL + "/v2/ingest")
	if err != nil {
		t.Fatal(err)
	}
	defer g.Body.Close()
	if g.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /v2/ingest = %d, want 405", g.StatusCode)
	}
	var envelope ErrorBody
	if err := json.NewDecoder(g.Body).Decode(&envelope); err != nil || envelope.Error.Code == "" {
		t.Fatalf("GET /v2/ingest error envelope: %+v, %v", envelope, err)
	}
}

// TestIngestStatsInStatus checks /v1/status surfaces the pipeline counters.
func TestIngestStatsInStatus(t *testing.T) {
	tuning := ingest.Tuning{Workers: 2}
	b, err := NewSketchBackendFrom(SketchBackendConfig{
		Algo: "Ours", Spec: sketch.Spec{MemoryBytes: 1 << 18, Lambda: 25, Seed: 1}, Ingest: &tuning,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	b.Ingest(ingest.Batch{Items: []stream.Item{{Key: 1, Value: 1}}})
	if err := b.pipe.Drain(); err != nil {
		t.Fatal(err)
	}
	st := b.Status()
	if st.Ingest == nil {
		t.Fatal("pipelined backend status has no ingest stats")
	}
	if st.Ingest.Accepted != 1 || st.Ingest.Workers != 2 {
		t.Fatalf("ingest stats %+v, want 1 accepted across 2 workers", st.Ingest)
	}
	if got, err := json.Marshal(st); err != nil || !strings.Contains(string(got), `"ingest"`) {
		t.Fatalf("status JSON %s (%v) lacks ingest section", got, err)
	}
	if fmt.Sprint(st.Ingest.Policy) != "block" {
		t.Fatalf("default policy %q, want block", st.Ingest.Policy)
	}
}
