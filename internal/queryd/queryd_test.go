package queryd_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"repro/internal/ingest"
	"repro/internal/netsum"
	"repro/internal/query"
	"repro/internal/queryd"
	"repro/internal/sketch"
	_ "repro/internal/sketch/all"
	"repro/internal/stream"
)

// execPoint answers one key through the unified query plane, the surface
// the per-key backend methods were folded into.
func execPoint(t *testing.T, b queryd.Backend, key uint64) (est uint64, certified bool) {
	t.Helper()
	ans, err := b.Execute(query.Request{Kind: query.Point, Keys: []uint64{key}})
	if err != nil {
		t.Fatalf("point query for %d: %v", key, err)
	}
	return ans.PerKey[0].Est, ans.Certified
}

type manualTestClock struct {
	mu  sync.Mutex
	now time.Time
}

func (c *manualTestClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *manualTestClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.now = c.now.Add(d)
	c.mu.Unlock()
}

func getJSON[T any](t *testing.T, url string) T {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var e map[string]string
		json.NewDecoder(resp.Body).Decode(&e)
		t.Fatalf("GET %s: %d (%s)", url, resp.StatusCode, e["error"])
	}
	var v T
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatalf("GET %s: decoding: %v", url, err)
	}
	return v
}

func postJSON(t *testing.T, url string, body any) *http.Response {
	t.Helper()
	var buf bytes.Buffer
	if body != nil {
		if err := json.NewEncoder(&buf).Encode(body); err != nil {
			t.Fatal(err)
		}
	}
	resp, err := http.Post(url, "application/json", &buf)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func insertItems(t *testing.T, base string, items map[uint64]uint64) {
	t.Helper()
	type item struct {
		Key   uint64 `json:"key"`
		Value uint64 `json:"value"`
	}
	var req struct {
		Items []item `json:"items"`
	}
	for k, v := range items {
		req.Items = append(req.Items, item{Key: k, Value: v})
	}
	resp := postJSON(t, base+"/v1/insert", req)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("insert: status %d", resp.StatusCode)
	}
}

func newStandaloneServer(t *testing.T, cfg queryd.Config) (*queryd.Server, *httptest.Server, *queryd.SketchBackend) {
	t.Helper()
	if cfg.Algo == "" {
		cfg.Algo = "Ours"
	}
	if cfg.Spec.MemoryBytes == 0 {
		cfg.Spec = sketch.Spec{MemoryBytes: 256 << 10, Lambda: 25, Seed: 1, Emergency: true}
	}
	b, err := queryd.NewSketchBackend(cfg.Algo, cfg.Spec, 0, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	s, err := queryd.New(b, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() { ts.Close(); s.Close() })
	return s, ts, b
}

func TestStandalonePointQueryCertified(t *testing.T) {
	_, ts, _ := newStandaloneServer(t, queryd.Config{})
	truth := map[uint64]uint64{}
	for i := uint64(1); i <= 300; i++ {
		truth[i] = i * 3
	}
	insertItems(t, ts.URL, truth)
	for _, key := range []uint64{1, 100, 300} {
		r := getJSON[queryd.QueryResponse](t, fmt.Sprintf("%s/v1/point?key=%d", ts.URL, key))
		if !r.Certified {
			t.Fatalf("key %d: uncertified answer from an ErrorBounded sketch", key)
		}
		if truth[key] > r.Upper || r.Lower > truth[key] {
			t.Errorf("key %d: interval [%d,%d] misses exact %d", key, r.Lower, r.Upper, truth[key])
		}
	}
	// A key never inserted still answers with a sound interval.
	r := getJSON[queryd.QueryResponse](t, ts.URL+"/v1/point?key=999999")
	if r.Lower > 0 {
		t.Errorf("absent key certified lower bound %d > 0", r.Lower)
	}
}

func TestRepeatedQueriesHitCache(t *testing.T) {
	_, ts, _ := newStandaloneServer(t, queryd.Config{CacheTTL: time.Hour})
	insertItems(t, ts.URL, map[uint64]uint64{7: 100})
	first := getJSON[queryd.QueryResponse](t, ts.URL+"/v1/point?key=7")
	if first.Cached {
		t.Error("first query claims cached")
	}
	const repeats = 99
	for i := 0; i < repeats; i++ {
		r := getJSON[queryd.QueryResponse](t, ts.URL+"/v1/point?key=7")
		if !r.Cached || r.Est != first.Est {
			t.Fatalf("repeat %d: cached=%v est=%d, want cached est=%d", i, r.Cached, r.Est, first.Est)
		}
	}
	st := getJSON[queryd.StatusResponse](t, ts.URL+"/v1/status")
	if st.Cache.HitRate <= 0.9 {
		t.Errorf("hit rate %.3f over %d repeated queries, want > 0.9", st.Cache.HitRate, repeats+1)
	}
}

func TestTopKEndpoint(t *testing.T) {
	_, ts, _ := newStandaloneServer(t, queryd.Config{})
	items := map[uint64]uint64{}
	for i := uint64(1); i <= 50; i++ {
		items[i] = 10
	}
	items[777] = 10_000
	items[888] = 5_000
	insertItems(t, ts.URL, items)
	r := getJSON[queryd.TopKResponse](t, ts.URL+"/v1/topk?k=2")
	if len(r.Items) != 2 {
		t.Fatalf("topk returned %d items", len(r.Items))
	}
	if r.Items[0].Key != 777 || r.Items[1].Key != 888 {
		t.Errorf("topk order = [%d, %d], want [777, 888]", r.Items[0].Key, r.Items[1].Key)
	}
	if r.Items[0].Est < 10_000 || !r.Items[0].Certified {
		t.Errorf("heaviest item est=%d certified=%v", r.Items[0].Est, r.Items[0].Certified)
	}
}

func TestEpochWindowCacheInvalidationOnSeal(t *testing.T) {
	clk := &manualTestClock{now: time.Unix(0, 0)}
	spec := sketch.Spec{MemoryBytes: 128 << 10, Lambda: 25, Seed: 1}
	b, err := queryd.NewSketchBackend("Ours", spec, time.Second, 4, clk.Now)
	if err != nil {
		t.Fatal(err)
	}
	s, err := queryd.New(b, queryd.Config{Algo: "Ours", Spec: spec})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() { ts.Close(); s.Close() })

	b.Ingest(ingest.Batch{Items: []stream.Item{{Key: 5, Value: 100}}})
	clk.Advance(time.Second) // seal epoch 0
	url := ts.URL + "/v1/window?key=5&n=4"
	first := getJSON[queryd.QueryResponse](t, url)
	if first.Cached || first.Est != 100 || first.Covered != 1 {
		t.Fatalf("first sealed answer = %+v", first)
	}
	// Sealed answers are immutable: repeats are cache hits at the same
	// generation, regardless of TTL.
	second := getJSON[queryd.QueryResponse](t, url)
	if !second.Cached || second.Generation != first.Generation {
		t.Fatalf("second sealed answer = %+v", second)
	}

	// New epoch seals -> generation advances -> the whole cached
	// generation is invalidated and the answer now covers both epochs.
	b.Ingest(ingest.Batch{Items: []stream.Item{{Key: 5, Value: 40}}})
	clk.Advance(time.Second)
	third := getJSON[queryd.QueryResponse](t, url)
	if third.Cached {
		t.Error("stale-generation answer served from cache after a seal")
	}
	if third.Generation <= first.Generation {
		t.Errorf("generation %d did not advance past %d", third.Generation, first.Generation)
	}
	if third.Est != 140 || third.Covered != 2 {
		t.Errorf("two-epoch window answer = %+v, want est=140 covered=2", third)
	}
}

func TestCollectorBackendEndpoints(t *testing.T) {
	clk := &manualTestClock{now: time.Unix(0, 0)}
	c, err := netsum.NewCollector("127.0.0.1:0", netsum.CollectorConfig{
		Spec:         sketch.Spec{Lambda: 25, MemoryBytes: 128 << 10, Seed: 1},
		Epoch:        time.Second,
		WindowEpochs: 4,
		Clock:        clk.Now,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	s, err := queryd.New(queryd.CollectorBackend{C: c, Algo: "Ours"}, queryd.Config{})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() { ts.Close(); s.Close() })

	a, err := netsum.Dial(c.Addr(), 42)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	for i := 0; i < 80; i++ {
		if err := a.Record(9, 1); err != nil {
			t.Fatal(err)
		}
	}
	if err := a.Flush(); err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := a.Stats(); err != nil {
		t.Fatal(err)
	}
	clk.Advance(time.Second)

	r := getJSON[queryd.QueryResponse](t, ts.URL+"/v1/point?key=9")
	if !r.Certified || 80 > r.Upper || r.Lower > 80 {
		t.Errorf("collector point answer %+v misses exact 80", r)
	}
	w := getJSON[queryd.QueryResponse](t, ts.URL+"/v1/window?key=9&n=4")
	if w.Covered != 1 || 80 > w.Upper || w.Lower > 80 {
		t.Errorf("collector window answer %+v", w)
	}
	aw := getJSON[queryd.QueryResponse](t, ts.URL+"/v1/window?key=9&n=4&agent=42")
	if aw.Agent != 42 || 80 > aw.Upper || aw.Lower > 80 {
		t.Errorf("agent window answer %+v", aw)
	}
	if resp, err := http.Get(ts.URL + "/v1/window?key=9&n=4&agent=777"); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("unknown agent: status %d, want 404", resp.StatusCode)
		}
	}
	st := getJSON[queryd.StatusResponse](t, ts.URL+"/v1/status")
	if st.Backend.Mode != "collector" || st.Backend.Agents != 1 || !st.Backend.Epochal {
		t.Errorf("status backend = %+v", st.Backend)
	}
	// A collector backend does not ingest over HTTP.
	resp := postJSON(t, ts.URL+"/v1/insert", map[string]any{"items": []any{}})
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotImplemented {
		t.Errorf("collector insert: status %d, want 501", resp.StatusCode)
	}
}

func TestCheckpointWarmRestart(t *testing.T) {
	// The acceptance path: a server restarted from its checkpoint answers
	// queries whose certified intervals contain the pre-restart exact
	// counts.
	path := filepath.Join(t.TempDir(), "state.ckpt")
	spec := sketch.Spec{MemoryBytes: 256 << 10, Lambda: 25, Seed: 1, Emergency: true}
	_, ts, _ := newStandaloneServer(t, queryd.Config{
		Algo: "Ours", Spec: spec, CheckpointPath: path,
	})
	truth := map[uint64]uint64{}
	for i := uint64(1); i <= 500; i++ {
		truth[i] = i
	}
	insertItems(t, ts.URL, truth)
	resp := postJSON(t, ts.URL+"/v1/checkpoint", nil)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("checkpoint: status %d", resp.StatusCode)
	}

	// "Restart": rebuild the backend purely from the checkpoint file.
	algo, loadedSpec, walLSN, payload, err := queryd.OpenCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	if algo != "Ours" || loadedSpec != spec {
		t.Fatalf("checkpoint header (%s, %+v), want (Ours, %+v)", algo, loadedSpec, spec)
	}
	if walLSN != 0 {
		t.Fatalf("checkpoint without a WAL records cut LSN %d, want 0", walLSN)
	}
	b2, err := queryd.NewSketchBackend(algo, loadedSpec, 0, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := b2.Restore(payload); err != nil {
		t.Fatal(err)
	}
	payload.Close()
	s2, err := queryd.New(b2, queryd.Config{Algo: algo, Spec: loadedSpec})
	if err != nil {
		t.Fatal(err)
	}
	ts2 := httptest.NewServer(s2.Handler())
	t.Cleanup(func() { ts2.Close(); s2.Close() })
	for _, key := range []uint64{1, 250, 500} {
		r := getJSON[queryd.QueryResponse](t, fmt.Sprintf("%s/v1/point?key=%d", ts2.URL, key))
		if !r.Certified || truth[key] > r.Upper || r.Lower > truth[key] {
			t.Errorf("restored key %d: interval [%d,%d] misses pre-restart exact %d",
				key, r.Lower, r.Upper, truth[key])
		}
	}
}

func TestConcurrentQueriesAndIngest(t *testing.T) {
	// Race hygiene: queries, ingest, topk, and status from many goroutines
	// at once. Run under -race in CI.
	_, ts, b := newStandaloneServer(t, queryd.Config{CacheTTL: time.Millisecond})
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			b.Ingest(ingest.Batch{Items: []stream.Item{{Key: uint64(i % 64), Value: 1}}})
		}
	}()
	client := ts.Client()
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				url := fmt.Sprintf("%s/v1/point?key=%d", ts.URL, i%16)
				switch i % 4 {
				case 1:
					url = ts.URL + "/v1/topk?k=5"
				case 2:
					url = ts.URL + "/v1/status"
				}
				resp, err := client.Get(url)
				if err != nil {
					t.Error(err)
					return
				}
				resp.Body.Close()
			}
		}(g)
	}
	time.Sleep(50 * time.Millisecond)
	close(stop)
	wg.Wait()
}

func TestBadRequests(t *testing.T) {
	_, ts, _ := newStandaloneServer(t, queryd.Config{})
	for url, want := range map[string]int{
		"/v1/point":                http.StatusBadRequest, // missing key
		"/v1/point?key=abc":        http.StatusBadRequest,
		"/v1/window?key=1&n=0":     http.StatusBadRequest,
		"/v1/topk?k=0":             http.StatusBadRequest,
		"/v1/window?key=1&agent=2": http.StatusNotImplemented, // standalone: no agents
	} {
		resp, err := http.Get(ts.URL + url)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != want {
			t.Errorf("GET %s: status %d, want %d", url, resp.StatusCode, want)
		}
	}
}

func TestCheckpointImpossibleConfigRefusedAtStartup(t *testing.T) {
	// Epoch-mode backends can never checkpoint: a server configured to
	// persist state must refuse at startup, not log failures forever.
	spec := sketch.Spec{MemoryBytes: 64 << 10, Lambda: 25, Seed: 1}
	ring, err := queryd.NewSketchBackend("Ours", spec, time.Second, 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := queryd.New(ring, queryd.Config{CheckpointPath: filepath.Join(t.TempDir(), "x.ckpt")}); err == nil {
		t.Error("epoch-mode backend with a checkpoint path accepted")
	}
	// Non-Snapshottable variants refuse too.
	elastic, err := queryd.NewSketchBackend("Elastic", spec, 0, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := queryd.New(elastic, queryd.Config{CheckpointPath: filepath.Join(t.TempDir(), "x.ckpt")}); err == nil {
		t.Error("non-Snapshottable backend with a checkpoint path accepted")
	}
}

func TestRestoreRejectsCorruptSnapshotAtomically(t *testing.T) {
	// A truncated snapshot must not half-overwrite live state: the backend
	// keeps answering from its pre-restore contents after a failed Restore.
	spec := sketch.Spec{MemoryBytes: 64 << 10, Seed: 1}
	src, err := queryd.NewSketchBackend("CM_fast", spec, 0, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	src.Ingest(ingest.Batch{Items: []stream.Item{{Key: 1, Value: 111}}})
	var snap bytes.Buffer
	if err := src.Checkpoint(&snap); err != nil {
		t.Fatal(err)
	}
	dst, err := queryd.NewSketchBackend("CM_fast", spec, 0, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	dst.Ingest(ingest.Batch{Items: []stream.Item{{Key: 2, Value: 222}}})
	trunc := snap.Bytes()[:snap.Len()/2]
	if err := dst.Restore(bytes.NewReader(trunc)); err == nil {
		t.Fatal("truncated snapshot accepted")
	}
	if got, _ := execPoint(t, dst, 2); got != 222 {
		t.Errorf("failed restore corrupted live state: key 2 = %d, want 222", got)
	}
}

func TestEpochTopKEmptyBeforeFirstSeal(t *testing.T) {
	// Before anything seals, top-k is an empty window — not a missing
	// capability: the endpoint must answer 200 with no items, exactly as
	// /v1/window answers zeros with covered=0 in the same state.
	clk := &manualTestClock{now: time.Unix(0, 0)}
	spec := sketch.Spec{MemoryBytes: 128 << 10, Lambda: 25, Seed: 1}
	b, err := queryd.NewSketchBackend("Ours", spec, time.Second, 4, clk.Now)
	if err != nil {
		t.Fatal(err)
	}
	s, err := queryd.New(b, queryd.Config{})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() { ts.Close(); s.Close() })

	b.Ingest(ingest.Batch{Items: []stream.Item{{Key: 5, Value: 100}}})
	r := getJSON[queryd.TopKResponse](t, ts.URL+"/v1/topk?k=3")
	if len(r.Items) != 0 {
		t.Errorf("pre-seal topk returned %d items", len(r.Items))
	}
	clk.Advance(time.Second)
	r = getJSON[queryd.TopKResponse](t, ts.URL+"/v1/topk?k=3")
	if len(r.Items) != 1 || r.Items[0].Key != 5 {
		t.Errorf("post-seal topk = %+v, want key 5", r.Items)
	}
}

func TestShardedBackendConcurrentIngest(t *testing.T) {
	// Spec.Shards promises concurrent ingest; the backend must route it
	// through the sharded sketch's per-shard locks, not one outer mutex.
	// Race-checked in CI; correctness checked here.
	spec := sketch.Spec{MemoryBytes: 256 << 10, Lambda: 25, Seed: 1, Shards: 4}
	b, err := queryd.NewSketchBackend("Ours", spec, 0, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	const writers, perWriter = 8, 200
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				b.Ingest(ingest.Batch{Items: []stream.Item{{Key: uint64(i % 32), Value: 1}}})
				if i%16 == 0 {
					b.Execute(query.Request{Kind: query.Point, Keys: []uint64{uint64(i % 32)}})
					b.Execute(query.Request{Kind: query.TopK, K: 4})
				}
			}
		}(w)
	}
	wg.Wait()
	var total uint64
	for key := uint64(0); key < 32; key++ {
		est, certified := execPoint(t, b, key)
		if !certified {
			t.Fatalf("sharded backend lost certification for key %d", key)
		}
		total += est
	}
	if want := uint64(writers * perWriter); total < want {
		t.Errorf("estimates sum to %d, want ≥ %d (sharded never underestimates here)", total, want)
	}
	var snap bytes.Buffer
	if err := b.Checkpoint(&snap); err != nil {
		t.Fatalf("sharded checkpoint: %v", err)
	}
	b2, err := queryd.NewSketchBackend("Ours", spec, 0, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := b2.Restore(bytes.NewReader(snap.Bytes())); err != nil {
		t.Fatalf("sharded restore: %v", err)
	}
	got, _ := execPoint(t, b2, 1)
	if want, _ := execPoint(t, b, 1); got != want {
		t.Error("sharded snapshot round trip diverged")
	}
}
