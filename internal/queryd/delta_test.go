package queryd_test

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"

	"repro/internal/query"
	"repro/internal/queryd"
	"repro/internal/sketch"
)

// failingBackend answers every Execute with a fixed error, to pin the
// error-envelope status mapping.
type failingBackend struct{ err error }

func (b failingBackend) Execute(query.Request) (query.Answer, error) { return query.Answer{}, b.err }
func (b failingBackend) Generation() uint64                          { return 0 }
func (b failingBackend) Epochal() bool                               { return false }
func (b failingBackend) Status() queryd.Status                       { return queryd.Status{Mode: "failing"} }

func execStatus(t *testing.T, base string) (int, queryd.ErrorBody) {
	t.Helper()
	body, _ := json.Marshal(query.Request{Kind: query.Point, Keys: []uint64{1}})
	resp, err := http.Post(base+"/v2/query", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var eb queryd.ErrorBody
	if err := json.NewDecoder(resp.Body).Decode(&eb); err != nil {
		t.Fatalf("decoding error envelope: %v", err)
	}
	return resp.StatusCode, eb
}

// TestExecErrorEnvelopeDistinguishes503From500 pins the contract the
// cluster router routes on: a transient refusal (query.ErrUnavailable) is
// 503 "retry elsewhere", a backend that lost acked writes is a hard 500,
// and neither collapses into the generic 501.
func TestExecErrorEnvelopeDistinguishes503From500(t *testing.T) {
	cases := []struct {
		name       string
		err        error
		wantStatus int
		wantCode   string
	}{
		{"transient", fmt.Errorf("merged view: %w", query.ErrUnavailable), http.StatusServiceUnavailable, "unavailable"},
		{"lost-writes", fmt.Errorf("%w: fold failed", queryd.ErrLostWrites), http.StatusInternalServerError, "internal"},
		{"unsupported", errors.New("no such capability"), http.StatusNotImplemented, "unsupported"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s, err := queryd.New(failingBackend{err: tc.err}, queryd.Config{})
			if err != nil {
				t.Fatal(err)
			}
			ts := httptest.NewServer(s.Handler())
			defer func() { ts.Close(); s.Close() }()
			status, eb := execStatus(t, ts.URL)
			if status != tc.wantStatus || eb.Error.Code != tc.wantCode {
				t.Fatalf("%v mapped to %d %q, want %d %q", tc.err, status, eb.Error.Code, tc.wantStatus, tc.wantCode)
			}
		})
	}
}

func TestDeltaEndpointServesAndSkipsUnchanged(t *testing.T) {
	spec := sketch.Spec{MemoryBytes: 64 << 10, Lambda: 25, Seed: 4}
	_, ts, b := newStandaloneServer(t, queryd.Config{Algo: "CM_acc", Spec: spec})
	insertItems(t, ts.URL, map[uint64]uint64{7: 40, 8: 2})

	resp, err := http.Get(ts.URL + "/v2/delta")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /v2/delta: status %d", resp.StatusCode)
	}
	algo, gotSpec, ver, payload, err := queryd.ReadDeltaHeader(resp.Body)
	if err != nil {
		t.Fatalf("decoding delta header: %v", err)
	}
	if algo != "CM_acc" || gotSpec != spec {
		t.Fatalf("delta header algo=%q spec=%+v, want CM_acc %+v", algo, gotSpec, spec)
	}
	if want := b.DeltaVersion(); ver != want {
		t.Fatalf("delta version %d, want backend's %d", ver, want)
	}
	restored := sketch.MustBuild("CM_acc", spec)
	if err := restored.(sketch.Snapshotter).Restore(payload); err != nil {
		t.Fatalf("restoring delta payload: %v", err)
	}
	if got := restored.Query(7); got != 40 {
		t.Fatalf("restored delta estimates key 7 at %d, want 40", got)
	}

	// Same version back → 304, no body re-serialized.
	resp2, err := http.Get(fmt.Sprintf("%s/v2/delta?after=%d", ts.URL, ver))
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusNotModified {
		t.Fatalf("unchanged delta answered %d, want 304", resp2.StatusCode)
	}

	// New writes move the version → 200 again.
	insertItems(t, ts.URL, map[uint64]uint64{9: 1})
	resp3, err := http.Get(fmt.Sprintf("%s/v2/delta?after=%d", ts.URL, ver))
	if err != nil {
		t.Fatal(err)
	}
	resp3.Body.Close()
	if resp3.StatusCode != http.StatusOK {
		t.Fatalf("moved delta answered %d, want 200", resp3.StatusCode)
	}
}

func TestDeltaHeaderRefusesWrongMagic(t *testing.T) {
	_, _, _, _, err := queryd.ReadDeltaHeader(bytes.NewReader([]byte("RQC2xxxxxxxx")))
	if !errors.Is(err, sketch.ErrSnapshotMismatch) {
		t.Fatalf("checkpoint magic offered as delta: %v, want sketch.ErrSnapshotMismatch", err)
	}
}
