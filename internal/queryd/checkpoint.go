package queryd

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"

	"repro/internal/sketch"
)

// Checkpoint files make sketch state durable across restarts. The file is
// self-describing — magic "RQC1" | algorithm name | the Spec the sketch was
// built from | the sketch snapshot — so a warm restart can rebuild the
// exact same-Spec sketch before restoring into it, and a mismatched
// restore is refused by name instead of misparsing counters.

var checkpointMagic = [4]byte{'R', 'Q', 'C', '1'}

// WriteCheckpoint atomically writes a checkpoint to path: the header, then
// whatever snapshot writes (typically a Snapshotter's Snapshot or the
// collector's SnapshotGlobal). The file appears under its final name only
// once fully written and synced, so a crash mid-checkpoint leaves the
// previous checkpoint intact.
func WriteCheckpoint(path, algo string, spec sketch.Spec, snapshot func(io.Writer) error) (err error) {
	tmp, err := os.CreateTemp(filepath.Dir(path), filepath.Base(path)+".tmp*")
	if err != nil {
		return fmt.Errorf("queryd: creating checkpoint temp file: %w", err)
	}
	defer func() {
		if err != nil {
			tmp.Close()
			os.Remove(tmp.Name())
		}
	}()
	bw := bufio.NewWriterSize(tmp, 256<<10)
	if err = writeCheckpointHeader(bw, algo, spec); err != nil {
		return err
	}
	if err = snapshot(bw); err != nil {
		return fmt.Errorf("queryd: snapshotting into checkpoint: %w", err)
	}
	if err = bw.Flush(); err != nil {
		return err
	}
	if err = tmp.Sync(); err != nil {
		return err
	}
	if err = tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}

func writeCheckpointHeader(w io.Writer, algo string, spec sketch.Spec) error {
	if _, err := w.Write(checkpointMagic[:]); err != nil {
		return err
	}
	var buf [binary.MaxVarintLen64]byte
	write := func(vs ...uint64) error {
		for _, v := range vs {
			n := binary.PutUvarint(buf[:], v)
			if _, err := w.Write(buf[:n]); err != nil {
				return err
			}
		}
		return nil
	}
	if err := write(uint64(len(algo))); err != nil {
		return err
	}
	if _, err := io.WriteString(w, algo); err != nil {
		return err
	}
	emergency := uint64(0)
	if spec.Emergency {
		emergency = 1
	}
	return write(uint64(spec.MemoryBytes), spec.Lambda, spec.Seed,
		uint64(spec.FilterBits), math.Float64bits(spec.Rw), math.Float64bits(spec.Rl),
		emergency, uint64(spec.Shards))
}

// OpenCheckpoint opens a checkpoint file and decodes its header. The
// returned reader is positioned at the snapshot payload; the caller closes
// it (typically by handing it to Snapshotter.Restore or
// Collector.RestoreBaseline first).
func OpenCheckpoint(path string) (algo string, spec sketch.Spec, payload io.ReadCloser, err error) {
	f, err := os.Open(path)
	if err != nil {
		return "", sketch.Spec{}, nil, err
	}
	br := bufio.NewReaderSize(f, 256<<10)
	algo, spec, err = readCheckpointHeader(br)
	if err != nil {
		f.Close()
		return "", sketch.Spec{}, nil, fmt.Errorf("queryd: %s: %w", path, err)
	}
	return algo, spec, &checkpointReader{Reader: br, f: f}, nil
}

// checkpointReader pairs the buffered payload reader with the underlying
// file's Close.
type checkpointReader struct {
	*bufio.Reader
	f *os.File
}

func (c *checkpointReader) Close() error { return c.f.Close() }

func readCheckpointHeader(br *bufio.Reader) (string, sketch.Spec, error) {
	var magic [4]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return "", sketch.Spec{}, fmt.Errorf("reading checkpoint magic: %w", err)
	}
	if magic != checkpointMagic {
		return "", sketch.Spec{}, fmt.Errorf("bad checkpoint magic %q", magic[:])
	}
	read := func() (uint64, error) { return binary.ReadUvarint(br) }
	nameLen, err := read()
	if err != nil {
		return "", sketch.Spec{}, fmt.Errorf("checkpoint algo length: %w", err)
	}
	if nameLen > 256 {
		return "", sketch.Spec{}, fmt.Errorf("implausible checkpoint algo length %d", nameLen)
	}
	name := make([]byte, nameLen)
	if _, err := io.ReadFull(br, name); err != nil {
		return "", sketch.Spec{}, fmt.Errorf("checkpoint algo name: %w", err)
	}
	var fields [8]uint64
	for i := range fields {
		v, err := read()
		if err != nil {
			return "", sketch.Spec{}, fmt.Errorf("checkpoint spec field %d: %w", i, err)
		}
		fields[i] = v
	}
	spec := sketch.Spec{
		MemoryBytes: int(fields[0]),
		Lambda:      fields[1],
		Seed:        fields[2],
		FilterBits:  int(fields[3]),
		Rw:          math.Float64frombits(fields[4]),
		Rl:          math.Float64frombits(fields[5]),
		Emergency:   fields[6] == 1,
		Shards:      int(fields[7]),
	}
	return string(name), spec, nil
}
