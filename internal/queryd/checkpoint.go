package queryd

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/sketch"
)

// Checkpoint files make sketch state durable across restarts. The file is
// self-describing — magic "RQC2" | algorithm name | the Spec the sketch was
// built from | the WAL cut LSN | the sketch snapshot — so a warm restart can
// rebuild the exact same-Spec sketch before restoring into it, and a
// mismatched restore is refused by name instead of misparsing counters.
//
// The WAL cut LSN records the last write-ahead-log record folded into the
// snapshot; recovery replays strictly after it. It lives in the checkpoint
// file rather than only in the WAL manifest because the checkpoint rename
// and the manifest's watermark advance cannot be atomic with each other —
// the checkpoint itself must say where replay starts. "RQC1" files (written
// before WAL support) are still readable and carry an implicit LSN of 0.

var (
	checkpointMagic   = [4]byte{'R', 'Q', 'C', '2'}
	checkpointMagicV1 = [4]byte{'R', 'Q', 'C', '1'}
)

// WriteCheckpoint atomically writes a checkpoint to path: the header, then
// whatever snapshot writes (typically a Snapshotter's Snapshot or the
// collector's SnapshotGlobal). The snapshot runs before the header is
// encoded, so lsn — which reports the WAL position the snapshot covers —
// is read after the snapshot's cut completes; pass nil when no WAL is
// attached. The file appears under its final name only once fully written,
// synced, and its directory entry synced, so a crash mid-checkpoint leaves
// the previous checkpoint intact.
func WriteCheckpoint(path, algo string, spec sketch.Spec, snapshot func(io.Writer) error, lsn func() uint64) (err error) {
	// Buffer the snapshot first: it performs the consistency cut (drain +
	// serialize under lock), and the cut LSN is only correct once that cut
	// has happened.
	var body bytes.Buffer
	if err := snapshot(&body); err != nil {
		return fmt.Errorf("queryd: snapshotting into checkpoint: %w", err)
	}
	var cut uint64
	if lsn != nil {
		cut = lsn()
	}

	tmp, err := os.CreateTemp(filepath.Dir(path), filepath.Base(path)+".tmp*")
	if err != nil {
		return fmt.Errorf("queryd: creating checkpoint temp file: %w", err)
	}
	defer func() {
		if err != nil {
			tmp.Close()
			os.Remove(tmp.Name())
		}
	}()
	bw := bufio.NewWriterSize(tmp, 256<<10)
	if err = writeCheckpointHeader(bw, algo, spec, cut); err != nil {
		return err
	}
	if _, err = body.WriteTo(bw); err != nil {
		return err
	}
	if err = bw.Flush(); err != nil {
		return err
	}
	if err = tmp.Sync(); err != nil {
		return err
	}
	if err = tmp.Close(); err != nil {
		return err
	}
	if err = os.Rename(tmp.Name(), path); err != nil {
		return err
	}
	return syncParentDir(path)
}

// syncParentDir fsyncs path's directory so the rename that published the
// file is itself durable.
func syncParentDir(path string) error {
	d, err := os.Open(filepath.Dir(path))
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}

// CleanCheckpointTemps removes stale temp files a crashed checkpoint write
// left next to path. Call it once at startup, before the first checkpoint.
func CleanCheckpointTemps(path string) error {
	dir, base := filepath.Dir(path), filepath.Base(path)
	entries, err := os.ReadDir(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return nil
		}
		return err
	}
	for _, e := range entries {
		if strings.HasPrefix(e.Name(), base+".tmp") {
			if err := os.Remove(filepath.Join(dir, e.Name())); err != nil {
				return err
			}
		}
	}
	return nil
}

func writeCheckpointHeader(w io.Writer, algo string, spec sketch.Spec, walLSN uint64) error {
	if _, err := w.Write(checkpointMagic[:]); err != nil {
		return err
	}
	return writeSpecHeader(w, algo, spec, walLSN)
}

// writeSpecHeader encodes the self-describing portion shared by checkpoint
// files and delta envelopes: algorithm name, the Spec the sketch was built
// from, and one format-specific trailing word (the WAL cut LSN for
// checkpoints, the delta version for replication).
func writeSpecHeader(w io.Writer, algo string, spec sketch.Spec, tail uint64) error {
	var buf [binary.MaxVarintLen64]byte
	write := func(vs ...uint64) error {
		for _, v := range vs {
			n := binary.PutUvarint(buf[:], v)
			if _, err := w.Write(buf[:n]); err != nil {
				return err
			}
		}
		return nil
	}
	if err := write(uint64(len(algo))); err != nil {
		return err
	}
	if _, err := io.WriteString(w, algo); err != nil {
		return err
	}
	emergency := uint64(0)
	if spec.Emergency {
		emergency = 1
	}
	if err := write(uint64(spec.MemoryBytes), spec.Lambda, spec.Seed,
		uint64(spec.FilterBits), math.Float64bits(spec.Rw), math.Float64bits(spec.Rl),
		emergency, uint64(spec.Shards)); err != nil {
		return err
	}
	return write(tail)
}

// OpenCheckpoint opens a checkpoint file and decodes its header, including
// the WAL cut LSN replay must start after (0 for pre-WAL "RQC1" files). The
// returned reader is positioned at the snapshot payload; the caller closes
// it (typically by handing it to Snapshotter.Restore or
// Collector.RestoreBaseline first).
func OpenCheckpoint(path string) (algo string, spec sketch.Spec, walLSN uint64, payload io.ReadCloser, err error) {
	f, err := os.Open(path)
	if err != nil {
		return "", sketch.Spec{}, 0, nil, err
	}
	br := bufio.NewReaderSize(f, 256<<10)
	algo, spec, walLSN, err = readCheckpointHeader(br)
	if err != nil {
		f.Close()
		return "", sketch.Spec{}, 0, nil, fmt.Errorf("queryd: %s: %w", path, err)
	}
	return algo, spec, walLSN, &checkpointReader{Reader: br, f: f}, nil
}

// checkpointReader pairs the buffered payload reader with the underlying
// file's Close.
type checkpointReader struct {
	*bufio.Reader
	f *os.File
}

func (c *checkpointReader) Close() error { return c.f.Close() }

func readCheckpointHeader(br *bufio.Reader) (string, sketch.Spec, uint64, error) {
	var magic [4]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return "", sketch.Spec{}, 0, fmt.Errorf("reading checkpoint magic: %w", err)
	}
	hasLSN := magic == checkpointMagic
	if !hasLSN && magic != checkpointMagicV1 {
		return "", sketch.Spec{}, 0, fmt.Errorf("bad checkpoint magic %q", magic[:])
	}
	return readSpecHeader(br, hasLSN)
}

// readSpecHeader decodes what writeSpecHeader wrote (the caller has already
// consumed and validated the magic). withTail is false only for pre-WAL
// "RQC1" checkpoints, which end after the spec fields.
func readSpecHeader(br *bufio.Reader, withTail bool) (string, sketch.Spec, uint64, error) {
	read := func() (uint64, error) { return binary.ReadUvarint(br) }
	nameLen, err := read()
	if err != nil {
		return "", sketch.Spec{}, 0, fmt.Errorf("checkpoint algo length: %w", err)
	}
	if nameLen > 256 {
		return "", sketch.Spec{}, 0, fmt.Errorf("implausible checkpoint algo length %d", nameLen)
	}
	name := make([]byte, nameLen)
	if _, err := io.ReadFull(br, name); err != nil {
		return "", sketch.Spec{}, 0, fmt.Errorf("checkpoint algo name: %w", err)
	}
	var fields [8]uint64
	for i := range fields {
		v, err := read()
		if err != nil {
			return "", sketch.Spec{}, 0, fmt.Errorf("checkpoint spec field %d: %w", i, err)
		}
		fields[i] = v
	}
	var tail uint64
	if withTail {
		if tail, err = read(); err != nil {
			return "", sketch.Spec{}, 0, fmt.Errorf("checkpoint trailing word: %w", err)
		}
	}
	spec := sketch.Spec{
		MemoryBytes: int(fields[0]),
		Lambda:      fields[1],
		Seed:        fields[2],
		FilterBits:  int(fields[3]),
		Rw:          math.Float64frombits(fields[4]),
		Rl:          math.Float64frombits(fields[5]),
		Emergency:   fields[6] == 1,
		Shards:      int(fields[7]),
	}
	return string(name), spec, tail, nil
}
