package queryd_test

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/ingest"
	"repro/internal/queryd"
	"repro/internal/sketch"
	"repro/internal/telemetry"
	"repro/internal/wal"
)

// scrape fetches GET /metrics and returns the exposition body.
func scrape(t *testing.T, base string) string {
	t.Helper()
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics: status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != telemetry.ContentType {
		t.Fatalf("GET /metrics: Content-Type %q, want %q", ct, telemetry.ContentType)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(body)
}

// sampleValue extracts the value of an exact series line from a scrape.
func sampleValue(t *testing.T, out, series string) uint64 {
	t.Helper()
	for _, line := range strings.Split(out, "\n") {
		if rest, ok := strings.CutPrefix(line, series+" "); ok {
			var v uint64
			if _, err := fmt.Sscanf(rest, "%d", &v); err != nil {
				t.Fatalf("parsing %q: %v", line, err)
			}
			return v
		}
	}
	t.Fatalf("scrape has no series %q:\n%s", series, out)
	return 0
}

// TestMetricsCoverageEpochalPipelined checks GET /metrics on an epoch-mode
// pipelined server covers every plane: queryd request histograms, cache
// counters, the ingest pipeline's families, and the ring's seal series —
// and that /v1/status reports the same numbers, since both read the same
// registered instruments.
func TestMetricsCoverageEpochalPipelined(t *testing.T) {
	clk := &manualTestClock{now: time.Unix(1000, 0)}
	b, err := queryd.NewSketchBackendFrom(queryd.SketchBackendConfig{
		Algo: "Ours", Spec: sketch.Spec{MemoryBytes: 256 << 10, Lambda: 25, Seed: 1},
		Epoch: time.Second, Windows: 4, Clock: clk.Now,
		Ingest: &ingest.Tuning{Workers: 1, FlushItems: 64},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	s, err := queryd.New(b, queryd.Config{Clock: clk.Now})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	insertItems(t, ts.URL, map[uint64]uint64{1: 5, 2: 7})
	clk.Advance(2 * time.Second) // make the epoch overdue
	// Reading through the server seals the overdue window (Generation pokes).
	getJSON[queryd.QueryResponse](t, ts.URL+"/v1/point?key=1")
	getJSON[queryd.QueryResponse](t, ts.URL+"/v1/point?key=1") // cache hit
	resp := postJSON(t, ts.URL+"/v2/query", map[string]any{"kind": 1, "keys": []uint64{1, 2, 3}})
	resp.Body.Close()

	out := scrape(t, ts.URL)
	for _, series := range []string{
		`queryd_request_duration_seconds_bucket{endpoint="/v1/point",le="+Inf"}`,
		`queryd_request_duration_seconds_bucket{endpoint="/v2/query",le="+Inf"}`,
		"queryd_batch_keys_count 1",
		"queryd_cache_hits_total",
		"queryd_cache_misses_total",
		"queryd_backend_updates_total 2",
		"ingest_accepted_items_total 2",
		"ingest_fold_duration_seconds_count",
		"ingest_queue_depth_batches 0",
		"ring_seals_total",
		"ring_generation",
		"ring_sealed_windows",
		"ring_capacity 4",
		"ring_epoch_interval_seconds 1",
	} {
		if !strings.Contains(out, series) {
			t.Errorf("scrape missing %q", series)
		}
	}

	// Satellite contract: /v1/status derives from the same instruments the
	// scrape exposes — the numbers must agree (server quiesced).
	st := getJSON[queryd.StatusResponse](t, ts.URL+"/v1/status")
	out = scrape(t, ts.URL)
	if got := sampleValue(t, out, "queryd_backend_updates_total"); got != st.Backend.Updates {
		t.Errorf("scrape updates %d != status updates %d", got, st.Backend.Updates)
	}
	if got := sampleValue(t, out, "queryd_cache_misses_total"); got != st.Cache.Misses {
		t.Errorf("scrape misses %d != status misses %d", got, st.Cache.Misses)
	}
	if got := sampleValue(t, out, "ingest_accepted_items_total"); got != st.Backend.Ingest.Accepted {
		t.Errorf("scrape accepted %d != status accepted %d", got, st.Backend.Ingest.Accepted)
	}
	if got := sampleValue(t, out, "ring_generation"); got != st.Backend.Generation {
		t.Errorf("scrape generation %d != status generation %d", got, st.Backend.Generation)
	}
}

// TestMetricsCoverageWALBacked checks the wal_* families ride the scrape on
// a durable cumulative server, and agree with /v1/status.
func TestMetricsCoverageWALBacked(t *testing.T) {
	dir := t.TempDir()
	l, err := wal.Open(wal.Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	b, err := queryd.NewSketchBackendFrom(queryd.SketchBackendConfig{
		Algo: "Ours", Spec: sketch.Spec{MemoryBytes: 256 << 10, Lambda: 25, Seed: 1},
		Ingest: &ingest.Tuning{Workers: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	if err := b.AttachWAL(l, 0); err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	s, err := queryd.New(b, queryd.Config{CheckpointPath: filepath.Join(dir, "ckpt"), Algo: "Ours"})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	insertItems(t, ts.URL, map[uint64]uint64{1: 5})
	resp := postJSON(t, ts.URL+"/v1/checkpoint", nil)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("checkpoint: status %d", resp.StatusCode)
	}
	ts.Close()
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// Re-serve after close so the scrape sees settled counters.
	ts2 := httptest.NewServer(s.Handler())
	defer ts2.Close()

	out := scrape(t, ts2.URL)
	for _, series := range []string{
		"wal_appended_records_total 1",
		"wal_fsyncs_total",
		"wal_fsync_duration_seconds_count",
		"wal_append_duration_seconds_count 1",
		"wal_segments 1",
		"wal_truncations_total 1",
		`queryd_checkpoints_total{result="ok"} 2`, // explicit + final on Close
		`queryd_checkpoints_total{result="error"} 0`,
		"queryd_checkpoint_duration_seconds_count 2",
	} {
		if !strings.Contains(out, series) {
			t.Errorf("scrape missing %q:\n%s", series, out)
		}
	}
	st := getJSON[queryd.StatusResponse](t, ts2.URL+"/v1/status")
	if st.Backend.WAL == nil {
		t.Fatal("status has no wal block")
	}
	out = scrape(t, ts2.URL)
	if got := sampleValue(t, out, "wal_appended_records_total"); got != st.Backend.WAL.Appended {
		t.Errorf("scrape appended %d != status appended %d", got, st.Backend.WAL.Appended)
	}
	if got := sampleValue(t, out, "wal_fsyncs_total"); got != st.Backend.WAL.Fsyncs {
		t.Errorf("scrape fsyncs %d != status fsyncs %d", got, st.Backend.WAL.Fsyncs)
	}
}

// TestStatusJSONGolden pins the /v1/status wire shape byte-for-byte: the
// telemetry refactor rebuilt these counters on the metrics registry, and
// this golden string is the proof no legacy JSON key moved, renamed, or
// changed type.
func TestStatusJSONGolden(t *testing.T) {
	fixture := queryd.StatusResponse{
		Backend: queryd.Status{
			Mode: "standalone", Algo: "CM", Epochal: true, Generation: 7,
			Agents: 2, Updates: 10, Queries: 3,
			Ingest: &ingest.Stats{
				Workers: 2, Policy: "block", Submitted: 10, Accepted: 10,
				Dropped: 0, Applied: 10, Folds: 1, FoldedItems: 10,
			},
			WAL: &wal.Stats{
				Policy: "batch", Segments: 1, Bytes: 64, LastLSN: 5, Watermark: 2,
				Appended: 5, Fsyncs: 5, LastFsync: "2026-01-02T03:04:05Z",
				Replayed: 4, TornTruncations: 1, LastError: "boom",
			},
		},
		Cache: queryd.CacheStats{
			Entries: 1, Hits: 2, Misses: 3, Coalesced: 4, Evictions: 5,
			Invalidations: 6, Generation: 7, HitRate: 0.4,
		},
		Checkpoint: &queryd.CheckpointStatus{
			Path: "/tmp/ckpt", LastTime: "2026-01-02T03:04:05Z", Error: "disk full",
		},
	}
	got, err := json.Marshal(fixture)
	if err != nil {
		t.Fatal(err)
	}
	const golden = `{"backend":{"mode":"standalone","algo":"CM","epochal":true,"generation":7,"agents":2,"updates":10,"queries":3,` +
		`"ingest":{"workers":2,"policy":"block","submitted":10,"accepted":10,"dropped":0,"applied":10,"folds":1,"folded_items":10},` +
		`"wal":{"policy":"batch","segments":1,"bytes":64,"last_lsn":5,"watermark":2,"appended_records":5,"fsyncs":5,` +
		`"last_fsync":"2026-01-02T03:04:05Z","replayed_records":4,"torn_tail_truncations":1,"last_error":"boom"}},` +
		`"cache":{"entries":1,"hits":2,"misses":3,"coalesced":4,"evictions":5,"invalidations":6,"generation":7,"hit_rate":0.4},` +
		`"checkpoint":{"path":"/tmp/ckpt","last_time":"2026-01-02T03:04:05Z","error":"disk full"}}`
	if string(got) != golden {
		t.Errorf("status JSON drifted from the legacy shape:\ngot:  %s\nwant: %s", got, golden)
	}
}

// TestMetricsEndpointMethodGuard pins that /metrics follows the same
// method discipline (and JSON envelope) as every other endpoint.
func TestMetricsEndpointMethodGuard(t *testing.T) {
	_, ts, _ := newStandaloneServer(t, queryd.Config{})
	resp := postJSON(t, ts.URL+"/metrics", nil)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("POST /metrics: status %d, want 405", resp.StatusCode)
	}
}

// TestDisableMetrics pins the rsserve -metrics=false contract: the route
// disappears but the instruments behind /v1/status keep working.
func TestDisableMetrics(t *testing.T) {
	_, ts, _ := newStandaloneServer(t, queryd.Config{DisableMetrics: true})
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("GET /metrics with DisableMetrics: status %d, want 404", resp.StatusCode)
	}
	getJSON[queryd.StatusResponse](t, ts.URL+"/v1/status")
}
