package packet

import (
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/core"
)

func sampleTuple() FiveTuple {
	return FiveTuple{
		SrcIP: 0xC0A80001, DstIP: 0x08080808,
		SrcPort: 54321, DstPort: 443, Protocol: ProtoTCP,
	}
}

func TestBuildParseRoundTrip(t *testing.T) {
	for _, proto := range []uint8{ProtoTCP, ProtoUDP} {
		tup := sampleTuple()
		tup.Protocol = proto
		for _, payload := range []int{0, 1, 100, 1400} {
			frame, err := Build(tup, payload)
			if err != nil {
				t.Fatalf("Build(%d, %d): %v", proto, payload, err)
			}
			p, err := Parse(frame)
			if err != nil {
				t.Fatalf("Parse(%d, %d): %v", proto, payload, err)
			}
			if p.Tuple != tup {
				t.Errorf("tuple changed: %+v vs %+v", p.Tuple, tup)
			}
			if p.PayloadBytes != payload {
				t.Errorf("payload=%d want %d", p.PayloadBytes, payload)
			}
			if p.WireBytes != len(frame) {
				t.Errorf("wire=%d want frame length %d", p.WireBytes, len(frame))
			}
		}
	}
}

func TestBuildRejectsBadInput(t *testing.T) {
	tup := sampleTuple()
	if _, err := Build(tup, -1); err == nil {
		t.Error("negative payload accepted")
	}
	if _, err := Build(tup, 70000); err == nil {
		t.Error("oversized payload accepted")
	}
	tup.Protocol = 1 // ICMP unsupported
	if _, err := Build(tup, 0); err == nil {
		t.Error("unsupported protocol accepted")
	}
}

func TestParseRejectsGarbage(t *testing.T) {
	cases := [][]byte{
		nil,
		[]byte("short"),
		make([]byte, 64), // zeros: bad ethertype
	}
	for i, c := range cases {
		if _, err := Parse(c); err == nil {
			t.Errorf("case %d: garbage accepted", i)
		}
	}
	// Corrupt specific fields of a valid frame.
	frame, err := Build(sampleTuple(), 10)
	if err != nil {
		t.Fatal(err)
	}
	for _, corrupt := range []struct {
		name string
		mut  func(f []byte)
	}{
		{"ethertype", func(f []byte) { f[12] = 0x86 }},
		{"ip version", func(f []byte) { f[14] = 0x65 }},
		{"ihl", func(f []byte) { f[14] = 0x41 }},
		{"total length", func(f []byte) { f[16] = 0xff; f[17] = 0xff }},
		{"protocol", func(f []byte) { f[23] = 1 }},
	} {
		bad := append([]byte(nil), frame...)
		corrupt.mut(bad)
		if _, err := Parse(bad); err == nil {
			t.Errorf("%s corruption accepted", corrupt.name)
		}
	}
}

func TestChecksumValid(t *testing.T) {
	frame, err := Build(sampleTuple(), 0)
	if err != nil {
		t.Fatal(err)
	}
	// Recomputing the checksum over the header including the stored value
	// must yield 0xffff (ones-complement property).
	ip := frame[ethHeaderLen : ethHeaderLen+ipv4HeaderLen]
	var sum uint32
	for i := 0; i+1 < len(ip); i += 2 {
		sum += uint32(ip[i])<<8 | uint32(ip[i+1])
	}
	for sum>>16 != 0 {
		sum = sum&0xffff + sum>>16
	}
	if uint16(sum) != 0xffff {
		t.Errorf("checksum does not verify: %#04x", sum)
	}
}

func TestKeyDeterministicAndDiscriminating(t *testing.T) {
	a := sampleTuple()
	if a.Key() != a.Key() {
		t.Fatal("Key not deterministic")
	}
	b := a
	b.SrcPort++
	if a.Key() == b.Key() {
		t.Error("port change did not change key")
	}
	c := a
	c.Protocol = ProtoUDP
	if a.Key() == c.Key() {
		t.Error("protocol change did not change key")
	}
}

func TestKeyCollisionRate(t *testing.T) {
	err := quick.Check(func(src, dst uint32, sp, dp uint16) bool {
		t1 := FiveTuple{SrcIP: src, DstIP: dst, SrcPort: sp, DstPort: dp, Protocol: ProtoTCP}
		t2 := FiveTuple{SrcIP: src + 1, DstIP: dst, SrcPort: sp, DstPort: dp, Protocol: ProtoTCP}
		return t1.Key() != t2.Key()
	}, &quick.Config{MaxCount: 1000})
	if err != nil {
		t.Fatal(err)
	}
}

func TestString(t *testing.T) {
	s := sampleTuple().String()
	if !strings.Contains(s, "tcp") || !strings.Contains(s, "192.168.0.1") || !strings.Contains(s, ":443") {
		t.Errorf("String() = %q", s)
	}
}

func TestGeneratorEndToEnd(t *testing.T) {
	// Full front-end: frames → parse → sketch; verify certified per-flow
	// byte counts against exact accounting.
	g := NewGenerator(200, 7)
	frames, err := g.Frames(20000, 1.1)
	if err != nil {
		t.Fatal(err)
	}
	if len(frames) != 20000 {
		t.Fatalf("generated %d frames", len(frames))
	}
	sk := core.MustNew(core.Config{
		Lambda: 30000, MemoryBytes: 128 << 10, Seed: 7, FilterBits: 8,
	})
	truth := map[uint64]uint64{}
	for _, frame := range frames {
		p, err := Parse(frame)
		if err != nil {
			t.Fatalf("generated frame failed to parse: %v", err)
		}
		key := p.Tuple.Key()
		sk.Insert(key, uint64(p.WireBytes))
		truth[key] += uint64(p.WireBytes)
	}
	if len(truth) != 200 {
		t.Errorf("distinct flows = %d, want 200", len(truth))
	}
	for key, f := range truth {
		est, mpe := sk.QueryWithError(key)
		if f > est || est-mpe > f {
			t.Fatalf("flow %d: bytes %d outside certified [%d, %d]", key, f, est-mpe, est)
		}
	}
}

func FuzzParse(f *testing.F) {
	frame, err := Build(sampleTuple(), 50)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(frame)
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		p, err := Parse(data)
		if err != nil {
			return
		}
		if p.WireBytes > len(data) || p.PayloadBytes < 0 {
			t.Fatalf("implausible parse: wire=%d payload=%d len=%d",
				p.WireBytes, p.PayloadBytes, len(data))
		}
	})
}
