package packet

import (
	"math/rand/v2"

	"repro/internal/stream"
)

// Generator synthesizes packet traces: a population of flows with Zipf
// packet counts, emitted as interleaved frames — the front-end counterpart
// of stream.IPTrace that produces actual parseable bytes instead of
// abstract keys.
type Generator struct {
	tuples []FiveTuple
	rnd    *rand.Rand
}

// NewGenerator creates a population of `flows` random 5-tuples.
func NewGenerator(flows int, seed uint64) *Generator {
	rnd := rand.New(rand.NewPCG(seed, seed^0x9ac4e7))
	tuples := make([]FiveTuple, flows)
	for i := range tuples {
		proto := uint8(ProtoTCP)
		if rnd.IntN(4) == 0 {
			proto = ProtoUDP
		}
		tuples[i] = FiveTuple{
			SrcIP:    rnd.Uint32(),
			DstIP:    rnd.Uint32(),
			SrcPort:  uint16(rnd.IntN(65535) + 1),
			DstPort:  uint16([]int{80, 443, 53, 8080, rnd.IntN(65535) + 1}[rnd.IntN(5)]),
			Protocol: proto,
		}
	}
	return &Generator{tuples: tuples, rnd: rnd}
}

// Tuples exposes the flow population (for ground-truth accounting).
func (g *Generator) Tuples() []FiveTuple { return g.tuples }

// Frames synthesizes n frames whose flow choice follows a Zipf law with
// the given skew over the population, with bimodal payload sizes. It
// returns the raw frames; callers Parse them back, as a capture path would.
func (g *Generator) Frames(n int, skew float64) ([][]byte, error) {
	freqs := stream.ZipfFrequencies(n, len(g.tuples), skew)
	frames := make([][]byte, 0, n)
	for rank, count := range freqs {
		t := g.tuples[rank]
		for i := 0; i < count; i++ {
			payload := 0
			switch g.rnd.IntN(10) {
			case 0, 1, 2, 3, 4:
				payload = 0 // ACK-sized
			case 5, 6, 7, 8:
				payload = 1400 // MTU-ish
			default:
				payload = g.rnd.IntN(1400)
			}
			f, err := Build(t, payload)
			if err != nil {
				return nil, err
			}
			frames = append(frames, f)
		}
	}
	g.rnd.Shuffle(len(frames), func(i, j int) { frames[i], frames[j] = frames[j], frames[i] })
	return frames, nil
}
