// Package packet synthesizes and parses the minimal Ethernet/IPv4/TCP/UDP
// headers a deployed flow monitor sees, so examples and tests can exercise
// the full measurement front-end: raw frame → parsed 5-tuple → flow key →
// sketch. The paper's switch and FPGA implementations key flows by header
// fields; this package is the software stand-in for that parser.
//
// Only the fields the measurement path needs are modeled; options,
// fragmentation, and checksum verification are out of scope (headers are
// synthesized with valid checksums, and the parser checks structure, not
// integrity).
package packet

import (
	"encoding/binary"
	"fmt"

	"repro/internal/hash"
)

// Protocol numbers used by the flow key.
const (
	ProtoTCP = 6
	ProtoUDP = 17
)

// FiveTuple identifies a transport flow.
type FiveTuple struct {
	SrcIP    uint32
	DstIP    uint32
	SrcPort  uint16
	DstPort  uint16
	Protocol uint8
}

// Key folds the 5-tuple into the 64-bit flow key the sketches consume.
// The fold is a strong hash, matching how data planes derive flow IDs.
func (t FiveTuple) Key() uint64 {
	var buf [13]byte
	binary.BigEndian.PutUint32(buf[0:4], t.SrcIP)
	binary.BigEndian.PutUint32(buf[4:8], t.DstIP)
	binary.BigEndian.PutUint16(buf[8:10], t.SrcPort)
	binary.BigEndian.PutUint16(buf[10:12], t.DstPort)
	buf[12] = t.Protocol
	lo := hash.Murmur32(buf[:], 0x5eed)
	hi := hash.Murmur32(buf[:], 0xf10e)
	return uint64(hi)<<32 | uint64(lo)
}

// String renders the tuple in the conventional a.b.c.d:p → a.b.c.d:p form.
func (t FiveTuple) String() string {
	proto := "tcp"
	if t.Protocol == ProtoUDP {
		proto = "udp"
	}
	return fmt.Sprintf("%s %s:%d>%s:%d", proto,
		ipString(t.SrcIP), t.SrcPort, ipString(t.DstIP), t.DstPort)
}

func ipString(ip uint32) string {
	return fmt.Sprintf("%d.%d.%d.%d", byte(ip>>24), byte(ip>>16), byte(ip>>8), byte(ip))
}

// Header sizes.
const (
	ethHeaderLen  = 14
	ipv4HeaderLen = 20
	tcpHeaderLen  = 20
	udpHeaderLen  = 8
)

// Packet is a parsed frame: the flow tuple plus the sizes the measurement
// path records.
type Packet struct {
	Tuple FiveTuple
	// WireBytes is the full frame length — the value a byte-counting
	// deployment adds per packet.
	WireBytes int
	// PayloadBytes is the transport payload length.
	PayloadBytes int
}

// Build synthesizes a valid Ethernet+IPv4+TCP/UDP frame for the tuple with
// payloadLen payload bytes (zeros). The IPv4 checksum is correct; TCP/UDP
// checksums are zeroed (legal for synthetic captures, and ignored by
// measurement paths).
func Build(t FiveTuple, payloadLen int) ([]byte, error) {
	if payloadLen < 0 || payloadLen > 65000 {
		return nil, fmt.Errorf("packet: implausible payload length %d", payloadLen)
	}
	var transportLen int
	switch t.Protocol {
	case ProtoTCP:
		transportLen = tcpHeaderLen
	case ProtoUDP:
		transportLen = udpHeaderLen
	default:
		return nil, fmt.Errorf("packet: unsupported protocol %d", t.Protocol)
	}
	ipLen := ipv4HeaderLen + transportLen + payloadLen
	frame := make([]byte, ethHeaderLen+ipLen)

	// Ethernet: synthetic MACs, EtherType IPv4.
	copy(frame[0:6], []byte{0x02, 0, 0, 0, 0, 2})
	copy(frame[6:12], []byte{0x02, 0, 0, 0, 0, 1})
	binary.BigEndian.PutUint16(frame[12:14], 0x0800)

	// IPv4 header.
	ip := frame[ethHeaderLen:]
	ip[0] = 0x45 // version 4, IHL 5
	binary.BigEndian.PutUint16(ip[2:4], uint16(ipLen))
	ip[8] = 64 // TTL
	ip[9] = t.Protocol
	binary.BigEndian.PutUint32(ip[12:16], t.SrcIP)
	binary.BigEndian.PutUint32(ip[16:20], t.DstIP)
	binary.BigEndian.PutUint16(ip[10:12], ipv4Checksum(ip[:ipv4HeaderLen]))

	// Transport header.
	tp := ip[ipv4HeaderLen:]
	binary.BigEndian.PutUint16(tp[0:2], t.SrcPort)
	binary.BigEndian.PutUint16(tp[2:4], t.DstPort)
	if t.Protocol == ProtoTCP {
		tp[12] = 5 << 4 // data offset: 5 words
	} else {
		binary.BigEndian.PutUint16(tp[4:6], uint16(udpHeaderLen+payloadLen))
	}
	return frame, nil
}

// Parse extracts the flow tuple and sizes from a frame built by Build (or
// any well-formed Ethernet+IPv4+TCP/UDP frame without IP options).
func Parse(frame []byte) (Packet, error) {
	if len(frame) < ethHeaderLen+ipv4HeaderLen {
		return Packet{}, fmt.Errorf("packet: frame of %d bytes too short", len(frame))
	}
	if et := binary.BigEndian.Uint16(frame[12:14]); et != 0x0800 {
		return Packet{}, fmt.Errorf("packet: ethertype %#04x is not IPv4", et)
	}
	ip := frame[ethHeaderLen:]
	if ip[0]>>4 != 4 {
		return Packet{}, fmt.Errorf("packet: IP version %d", ip[0]>>4)
	}
	ihl := int(ip[0]&0x0f) * 4
	if ihl < ipv4HeaderLen || len(ip) < ihl {
		return Packet{}, fmt.Errorf("packet: bad IHL %d", ihl)
	}
	totalLen := int(binary.BigEndian.Uint16(ip[2:4]))
	if totalLen > len(ip) || totalLen < ihl {
		return Packet{}, fmt.Errorf("packet: IP total length %d out of range", totalLen)
	}
	var p Packet
	p.Tuple.Protocol = ip[9]
	p.Tuple.SrcIP = binary.BigEndian.Uint32(ip[12:16])
	p.Tuple.DstIP = binary.BigEndian.Uint32(ip[16:20])
	tp := ip[ihl:totalLen]
	var transportLen int
	switch p.Tuple.Protocol {
	case ProtoTCP:
		if len(tp) < tcpHeaderLen {
			return Packet{}, fmt.Errorf("packet: truncated TCP header (%d bytes)", len(tp))
		}
		transportLen = int(tp[12]>>4) * 4
		if transportLen < tcpHeaderLen || transportLen > len(tp) {
			return Packet{}, fmt.Errorf("packet: bad TCP data offset %d", transportLen)
		}
	case ProtoUDP:
		if len(tp) < udpHeaderLen {
			return Packet{}, fmt.Errorf("packet: truncated UDP header (%d bytes)", len(tp))
		}
		transportLen = udpHeaderLen
	default:
		return Packet{}, fmt.Errorf("packet: unsupported protocol %d", p.Tuple.Protocol)
	}
	p.Tuple.SrcPort = binary.BigEndian.Uint16(tp[0:2])
	p.Tuple.DstPort = binary.BigEndian.Uint16(tp[2:4])
	p.WireBytes = ethHeaderLen + totalLen
	p.PayloadBytes = totalLen - ihl - transportLen
	return p, nil
}

// ipv4Checksum computes the standard Internet checksum over the header
// (with its checksum field zeroed).
func ipv4Checksum(hdr []byte) uint16 {
	var sum uint32
	for i := 0; i+1 < len(hdr); i += 2 {
		if i == 10 {
			continue // checksum field itself
		}
		sum += uint32(binary.BigEndian.Uint16(hdr[i : i+2]))
	}
	for sum>>16 != 0 {
		sum = sum&0xffff + sum>>16
	}
	return ^uint16(sum)
}
