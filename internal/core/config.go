// Package core implements ReliableSketch, the paper's primary contribution:
// a stream summary that keeps the estimation error of ALL keys below a
// user-chosen tolerance Λ with overall confidence 1 − Δ, in O(1 + Δ·lnln(N/Λ))
// amortized time and O(N/Λ + ln(1/Δ)) space.
//
// The structure stacks d layers of Error-Sensible buckets whose widths w_i
// and lock thresholds λ_i both decay geometrically (Double Exponential
// Control, §3.2): a bucket whose certified error NO reaches λ_i locks, and
// overflow cascades to the next, smaller layer. Because Σ λ_i ≤ Λ, any key
// whose insertions are fully absorbed has certified error at most Λ. The
// doubly-exponential decay of keys surviving to deeper layers makes full
// absorption fail with only negligible probability Δ; an optional
// Space-Saving emergency layer (§3.3) catches even those failures, making
// the ≤ Λ guarantee unconditional.
package core

import (
	"fmt"
	"math"
	"math/bits"
)

// Config describes a ReliableSketch. Zero fields take the paper's
// recommended defaults (§6.1, §6.4).
type Config struct {
	// Lambda is the error tolerance Λ. If 0, it is derived from MemoryBytes
	// and ExpectedTotal via the paper's inverse sizing rule.
	Lambda uint64

	// MemoryBytes is the total memory budget. If 0, it is derived from
	// Lambda and ExpectedTotal via W = (RwRl)²/((Rw−1)(Rl−1)) · N/Λ.
	MemoryBytes int

	// ExpectedTotal is N = Σ f(e), the anticipated L1 size of the stream.
	// Needed only when exactly one of Lambda / MemoryBytes is given.
	ExpectedTotal uint64

	// Rw is the geometric decay ratio of layer widths (default 2, the
	// paper's Figure 11 optimum; sensible range [1.4, 10]).
	Rw float64

	// Rl is the geometric decay ratio of lock thresholds (default 2.5, the
	// paper's Figure 13 optimum).
	Rl float64

	// D is the number of bucket layers (default 12; the paper recommends
	// d ≥ 7).
	D int

	// DisableMiceFilter turns off the CU-filter first layer (§3.3). The
	// filter is on by default; disabling it yields the paper's "Raw"
	// variant (faster, less memory-efficient on mice-heavy workloads).
	DisableMiceFilter bool

	// FilterFraction is the share of memory given to the mice filter
	// (default 0.2 as in §6.1).
	FilterFraction float64

	// FilterBits is the width of each filter counter (default 2 bits as in
	// §6.1; use 8+ for byte-weighted streams).
	FilterBits int

	// FilterRows is the number of filter arrays (default 2, matching the
	// paper's "2-array mice filter").
	FilterRows int

	// Emergency enables the Space-Saving overflow layer that catches
	// insertion failures (§3.3). Disabled by default to match the paper's
	// accuracy evaluation, which reports ReliableSketch on its own.
	Emergency bool

	// EmergencyCounters sizes the emergency layer (default 1024, comfortably
	// above the Δ2·ln(1/Δ) bound of Theorem 4 for any practical Δ).
	EmergencyCounters int

	// Seed drives all hash functions; experiments vary it across trials.
	Seed uint64

	// Schedule selects the decay law of widths and thresholds. The default
	// ScheduleGeometric is the paper's Double Exponential Control; the
	// arithmetic kinds exist for the §3.2 ablation showing why geometric
	// decay is essential.
	Schedule ScheduleKind
}

// withDefaults fills unset fields with the paper's recommendations.
func (c Config) withDefaults() Config {
	if c.Rw == 0 {
		c.Rw = 2
	}
	if c.Rl == 0 {
		c.Rl = 2.5
	}
	if c.D == 0 {
		c.D = 12
	}
	if c.FilterFraction == 0 {
		c.FilterFraction = 0.2
	}
	if c.FilterBits == 0 {
		c.FilterBits = 2
	}
	if c.FilterRows == 0 {
		c.FilterRows = 2
	}
	if c.EmergencyCounters == 0 {
		c.EmergencyCounters = 1024
	}
	return c
}

// sizingConstant is (RwRl)² / ((Rw−1)(Rl−1)), the practical constant the
// paper recommends for W (§3.2 "Parameter Configurations").
func sizingConstant(rw, rl float64) float64 {
	return (rw * rl) * (rw * rl) / ((rw - 1) * (rl - 1))
}

// validate checks the configuration and resolves the Lambda/Memory pair.
func (c *Config) validate() error {
	if !(c.Rw > 1) || !(c.Rl > 1) || math.IsInf(c.Rw, 1) || math.IsInf(c.Rl, 1) {
		// The negated comparisons also reject NaN, which would silently
		// corrupt the geometry schedules.
		return fmt.Errorf("core: decay ratios must be finite and exceed 1 (Rw=%v, Rl=%v)", c.Rw, c.Rl)
	}
	if c.D < 1 {
		return fmt.Errorf("core: need at least one layer, got d=%d", c.D)
	}
	switch {
	case c.Lambda > 0 && c.MemoryBytes > 0:
		// fully specified
	case c.Lambda > 0 && c.ExpectedTotal > 0:
		// W = const · N/Λ buckets; translate to bytes below once bucket
		// width is known (done in New, which needs λ1 for NO sizing).
	case c.MemoryBytes > 0 && c.ExpectedTotal > 0:
		// Λ derived in New from the bucket count.
	default:
		return fmt.Errorf("core: need Lambda+MemoryBytes, or one of them plus ExpectedTotal")
	}
	return nil
}

// noBits returns the counter width needed to store values up to lambda1.
func noBits(lambda1 uint64) int {
	if lambda1 == 0 {
		return 1
	}
	return bits.Len64(lambda1)
}

// bucketBytes is the accounted size of one Error-Sensible bucket: 32-bit
// YES + 32-bit ID fingerprint + a NO counter just wide enough for λ1,
// rounded up to whole bytes. With the default Λ=25 this is the paper's
// 72-bit bucket.
func bucketBytes(lambda1 uint64) int {
	bits := 32 + 32 + noBits(lambda1)
	return (bits + 7) / 8
}

// lambdaSchedule computes the per-layer lock thresholds
// λ_i = ⌊Λ(Rl−1)/Rl^i⌋ for i = 1..d. Floors keep Σ λ_i ≤ Λ, preserving the
// certified error bound; deep layers may reach λ = 0, where buckets act as
// pure key-value cells (they absorb only their candidate and contribute no
// error).
func lambdaSchedule(lambda uint64, rl float64, d int) []uint64 {
	out := make([]uint64, d)
	for i := 0; i < d; i++ {
		out[i] = uint64(float64(lambda) * (rl - 1) / math.Pow(rl, float64(i+1)))
	}
	return out
}

// widthSchedule splits a total bucket budget across d layers in geometric
// proportion (Rw−1)/Rw^i, each layer at least 1 bucket.
func widthSchedule(totalBuckets int, rw float64, d int) []int {
	if totalBuckets < d {
		totalBuckets = d
	}
	norm := 1 - math.Pow(rw, -float64(d))
	out := make([]int, d)
	used := 0
	for i := 0; i < d; i++ {
		w := int(float64(totalBuckets) * (rw - 1) / math.Pow(rw, float64(i+1)) / norm)
		if w < 1 {
			w = 1
		}
		out[i] = w
		used += w
	}
	// Return rounding slack to the first (largest) layer.
	if used < totalBuckets {
		out[0] += totalBuckets - used
	}
	return out
}
