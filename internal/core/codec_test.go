package core

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/metrics"
	"repro/internal/stream"
)

func roundTrip(t *testing.T, sk *Sketch) *Sketch {
	t.Helper()
	var buf bytes.Buffer
	n, err := sk.WriteTo(&buf)
	if err != nil {
		t.Fatalf("WriteTo: %v", err)
	}
	if n != int64(buf.Len()) {
		t.Fatalf("WriteTo reported %d bytes, wrote %d", n, buf.Len())
	}
	got, err := ReadSketch(&buf)
	if err != nil {
		t.Fatalf("ReadSketch: %v", err)
	}
	return got
}

func TestSnapshotRoundTripIdenticalAnswers(t *testing.T) {
	s := stream.Zipf(100_000, 10_000, 1.0, 3)
	sk := NewFromMemory(128<<10, 25, 3)
	metrics.Feed(sk, s)
	got := roundTrip(t, sk)
	for key := range s.Truth() {
		e1, m1 := sk.QueryWithError(key)
		e2, m2 := got.QueryWithError(key)
		if e1 != e2 || m1 != m2 {
			t.Fatalf("key %d: (%d,%d) became (%d,%d) after round trip", key, e1, m1, e2, m2)
		}
	}
	f1, v1 := sk.InsertionFailures()
	f2, v2 := got.InsertionFailures()
	if f1 != f2 || v1 != v2 {
		t.Errorf("failure counters changed: (%d,%d) vs (%d,%d)", f1, v1, f2, v2)
	}
}

func TestSnapshotRoundTripRawVariant(t *testing.T) {
	s := stream.Zipf(50_000, 5_000, 1.0, 4)
	sk := NewRaw(128<<10, 25, 4)
	metrics.Feed(sk, s)
	got := roundTrip(t, sk)
	if got.Name() != "Ours(Raw)" {
		t.Errorf("variant lost: %q", got.Name())
	}
	for key := range s.Truth() {
		if sk.Query(key) != got.Query(key) {
			t.Fatal("raw round trip diverged")
		}
	}
}

func TestSnapshotRoundTripWithEmergency(t *testing.T) {
	s := stream.Zipf(50_000, 5_000, 0.5, 7)
	sk := MustNew(Config{
		Lambda: 5, MemoryBytes: 2 << 10, Seed: 7,
		Emergency: true, EmergencyCounters: 4096,
	})
	metrics.Feed(sk, s)
	if f, _ := sk.InsertionFailures(); f == 0 {
		t.Skip("no failures provoked; emergency path not exercised")
	}
	got := roundTrip(t, sk)
	for key := range s.Truth() {
		e1, m1 := sk.QueryWithError(key)
		e2, m2 := got.QueryWithError(key)
		if e1 != e2 || m1 != m2 {
			t.Fatalf("emergency state diverged for key %d: (%d,%d) vs (%d,%d)", key, e1, m1, e2, m2)
		}
	}
}

func TestSnapshotContinuesAccepting(t *testing.T) {
	sk := NewFromMemory(64<<10, 25, 9)
	sk.Insert(1, 100)
	got := roundTrip(t, sk)
	got.Insert(1, 50)
	est, _ := got.QueryWithError(1)
	if est < 150 {
		t.Errorf("restored sketch lost state: est=%d want ≥150", est)
	}
}

func TestSnapshotRejectsGarbage(t *testing.T) {
	cases := []string{
		"",             // empty
		"BAD0",         // wrong magic
		"RSK1",         // truncated header
		"RSK1\x01\x02", // still truncated
	}
	for _, c := range cases {
		if _, err := ReadSketch(strings.NewReader(c)); err == nil {
			t.Errorf("ReadSketch accepted %q", c)
		}
	}
	// Corrupt a valid snapshot's tail.
	sk := NewFromMemory(32<<10, 25, 1)
	sk.Insert(5, 500)
	var buf bytes.Buffer
	if _, err := sk.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	trunc := buf.Bytes()[:buf.Len()/2]
	if _, err := ReadSketch(bytes.NewReader(trunc)); err == nil {
		t.Error("ReadSketch accepted truncated snapshot")
	}
}

func TestSnapshotCompact(t *testing.T) {
	// A lightly loaded sketch must serialize sparsely — far below the
	// in-memory footprint.
	sk := NewFromMemory(1<<20, 25, 2)
	for k := uint64(0); k < 100; k++ {
		sk.Insert(k, 5)
	}
	var buf bytes.Buffer
	if _, err := sk.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	// The 2-bit filter dominates: 20% of 1MB packed ≈ 209KB of counters
	// serialized as varints. The bucket section must be tiny.
	if buf.Len() > 600_000 {
		t.Errorf("snapshot %d bytes; expected sparse encoding well under memory size", buf.Len())
	}
}
