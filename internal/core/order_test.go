package core

import (
	"testing"

	"repro/internal/metrics"
	"repro/internal/stream"
)

// TestOrderIndependentGuarantee exercises the paper's Theorem 1 setting:
// the certified interval must hold for ANY arrival order of the same
// multiset of items — uniform shuffle, key-sorted, heavy-first,
// mice-first, and bursty schedules.
func TestOrderIndependentGuarantee(t *testing.T) {
	base := stream.Zipf(150_000, 15_000, 1.0, 31)
	orders := []*stream.Stream{
		base,
		stream.SortedByKey(base),
		stream.HeavyFirst(base),
		stream.MiceFirst(base),
		stream.Bursty(base, 64, 31),
	}
	for _, s := range orders {
		sk := NewFromMemory(192<<10, 25, 31)
		metrics.Feed(sk, s)
		rep := metrics.SensedError(sk, s)
		if rep.Violations > 0 {
			if fails, _ := sk.InsertionFailures(); fails == 0 {
				t.Errorf("%s: %d interval violations with zero insertion failures", s.Name, rep.Violations)
			}
		}
		out := metrics.Evaluate(sk, s, 25).Outliers
		if out != 0 {
			t.Errorf("%s: %d outliers (order-dependent accuracy)", s.Name, out)
		}
	}
}

// TestMiceFirstStressesRawVariant documents WHY the mice filter exists
// (§3.3): under a mice-first schedule the raw variant's first layer locks
// up and pushes keys deep, costing hash calls — but the guarantee must
// still hold.
func TestMiceFirstStressesRawVariant(t *testing.T) {
	base := stream.DataCenter(100_000, 33)
	mf := stream.MiceFirst(base)
	raw := NewRaw(128<<10, 25, 33)
	metrics.Feed(raw, mf)
	rep := metrics.SensedError(raw, mf)
	if fails, _ := raw.InsertionFailures(); fails == 0 && rep.Violations > 0 {
		t.Errorf("raw variant: %d violations under mice-first schedule", rep.Violations)
	}
}
