package core

import "repro/internal/sketch"

// Tracked enumerates every candidate key currently resident in a bucket,
// with its certified estimate. Because every key whose value exceeds
// Λ + the mice-filter cap must occupy some bucket as candidate (it cannot
// be absorbed by collisions alone), Tracked is a superset of the heavy
// hitters — the invertibility property Elastic-style sketches advertise,
// here with certified per-key bounds.
//
// The same key may be the candidate of buckets in several layers (after
// lock-induced cascades); Tracked merges those occurrences the same way
// QueryWithError walks them, by re-querying each distinct candidate.
func (s *Sketch) Tracked() []sketch.KV {
	seen := make(map[uint64]struct{})
	var out []sketch.KV
	for i := range s.layers {
		for j := range s.layers[i] {
			b := &s.layers[i][j]
			if !b.Occupied() {
				continue
			}
			if _, dup := seen[b.ID]; dup {
				continue
			}
			seen[b.ID] = struct{}{}
			out = append(out, sketch.KV{Key: b.ID, Est: s.Query(b.ID)})
		}
	}
	return out
}

// HeavyHitters returns the tracked keys whose certified LOWER bound
// (est − mpe) exceeds threshold: every returned key truly has
// f(e) > threshold (no false positives), and no key with
// f(e) > threshold + Λ can be missing (bounded false negatives) —
// the property exercised by examples/heavyhitter.
func (s *Sketch) HeavyHitters(threshold uint64) []sketch.KV {
	var out []sketch.KV
	for _, kv := range s.Tracked() {
		est, mpe := s.QueryWithError(kv.Key)
		if est-mpe > threshold {
			out = append(out, sketch.KV{Key: kv.Key, Est: est})
		}
	}
	return out
}
