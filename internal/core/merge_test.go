package core

import "testing"

func TestMergeEmergencyCapacityMismatchLeavesReceiverUntouched(t *testing.T) {
	// EmergencyCounters does not affect layer geometry, so only an explicit
	// compatibility check stops this merge — and it must fire before any
	// receiver state is combined, or a failed merge would leave corrupted
	// buckets with the unsound fast query stops still enabled.
	build := func(counters int) *Sketch {
		return MustNew(Config{
			Lambda: 25, MemoryBytes: 64 << 10, Seed: 5,
			Emergency: true, EmergencyCounters: counters,
		})
	}
	a, b := build(1024), build(2048)
	a.Insert(1, 100)
	b.Insert(1, 50)
	estBefore, mpeBefore := a.QueryWithError(1)
	if err := a.Merge(b); err == nil {
		t.Fatal("merge accepted mismatched emergency capacities")
	}
	est, mpe := a.QueryWithError(1)
	if est != estBefore || mpe != mpeBefore {
		t.Errorf("failed merge mutated receiver: (%d,%d) became (%d,%d)",
			estBefore, mpeBefore, est, mpe)
	}
	if a.merged {
		t.Error("failed merge marked the receiver as merged")
	}
}
