package core

// QueryBatch is the native batch read path (sketch.BatchQuerier): the same
// layer walk as QueryWithError with two amortizations. Runs of equal keys —
// which sorted per-shard batches and hot-key workloads produce — reuse the
// previous walk's result outright (the walk is deterministic for fixed
// state, so a repeated key's answer cannot differ), and the atomic
// instrumentation counters are updated once per batch instead of once per
// key. Answers are identical to per-key QueryWithError; the query-op
// counter tallies one op per walk actually performed, so the hash-call
// average still reflects real work (the reduction is the optimization, as
// with InsertBatch).
func (s *Sketch) QueryBatch(keys []uint64, est, mpe []uint64) {
	var ops, hashCalls uint64
	var prevKey, prevEst, prevMPE uint64
	havePrev := false
	for i, k := range keys {
		if havePrev && k == prevKey {
			est[i] = prevEst
			if mpe != nil {
				mpe[i] = prevMPE
			}
			continue
		}
		e, m := s.queryWalk(k, &hashCalls)
		ops++
		est[i] = e
		if mpe != nil {
			mpe[i] = m
		}
		prevKey, prevEst, prevMPE, havePrev = k, e, m, true
	}
	s.queryOps.Add(ops)
	s.queryHashCalls.Add(hashCalls)
}
