package core

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"repro/internal/bucket"
	"repro/internal/spacesaving"

	"repro/internal/sketch"
)

// Snapshot serialization: WriteTo/ReadFrom persist a sketch's full state —
// geometry, filter, buckets, and failure counters — so epoch-based
// deployments can ship summaries from measurement points to a collector
// (the network-wide setting of internal/netsum) or archive them to disk.
//
// Wire format (all little-endian):
//
//	magic "RSK3" | config block | per-layer bucket runs | filter block
//
// Buckets serialize sparsely (most are empty at sane loads): each occupied
// bucket is (index uvarint, ID, YES, NO uvarints).

// codecMagic versions the snapshot format; "RSK3" added the filter block's
// counter-format field (packed vs varint), which lets merged filters —
// whose counters may sit above the saturation cap — serialize, so
// checkpointing a merge-built global view works.
var codecMagic = [4]byte{'R', 'S', 'K', '3'}

// WriteTo serializes the sketch. It implements io.WriterTo.
func (s *Sketch) WriteTo(w io.Writer) (int64, error) {
	bw := &countingWriter{w: bufio.NewWriter(w)}
	write := func(vs ...uint64) {
		var buf [binary.MaxVarintLen64]byte
		for _, v := range vs {
			n := binary.PutUvarint(buf[:], v)
			bw.Write(buf[:n])
		}
	}
	bw.Write(codecMagic[:])
	// Config block: enough to rebuild an identical geometry.
	write(s.lambda,
		uint64(len(s.layers)),
		math.Float64bits(s.cfg.Rw),
		math.Float64bits(s.cfg.Rl),
		s.cfg.Seed,
		uint64(s.cfg.Schedule),
		boolU64(s.mice != nil),
		uint64(s.cfg.FilterRows),
		uint64(s.cfg.FilterBits),
		boolU64(s.emerg != nil),
		uint64(s.cfg.EmergencyCounters),
		s.failures, s.failedValue,
		// RSK3: the merged marker must survive a snapshot — restored
		// merge-built state has to keep the merged-safe query walk — and the
		// operation counters keep instrumentation continuous across restarts.
		boolU64(s.merged), s.insertOps, s.insertHashCalls,
		s.queryOps.Load(), s.queryHashCalls.Load())
	for i := range s.layers {
		write(uint64(s.widths[i]), s.lambdas[i])
		occupied := uint64(0)
		for j := range s.layers[i] {
			if s.layers[i][j].Occupied() {
				occupied++
			}
		}
		write(occupied)
		for j := range s.layers[i] {
			b := &s.layers[i][j]
			if b.Occupied() {
				write(uint64(j), b.ID, b.YES, b.NO)
			}
		}
	}
	if s.mice != nil {
		if err := s.mice.EncodeTo(bw); err != nil {
			return bw.n, err
		}
	}
	if s.emerg != nil {
		for _, e := range s.emerg.Entries() {
			write(1, e.Key, e.Count, e.Err)
		}
		write(0)
	}
	if bw.err == nil {
		bw.err = bw.w.(*bufio.Writer).Flush()
	}
	return bw.n, bw.err
}

func boolU64(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

// ReadSketch reconstructs a sketch serialized by WriteTo.
func ReadSketch(r io.Reader) (*Sketch, error) {
	br := bufio.NewReader(r)
	var magic [4]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, fmt.Errorf("core: reading snapshot magic: %w", err)
	}
	if magic != codecMagic {
		return nil, fmt.Errorf("%w: bad core snapshot magic %q", sketch.ErrSnapshotMismatch, magic[:])
	}
	read := func() (uint64, error) { return binary.ReadUvarint(br) }
	var fields [18]uint64
	for i := range fields {
		v, err := read()
		if err != nil {
			return nil, fmt.Errorf("core: reading snapshot header: %w", err)
		}
		fields[i] = v
	}
	lambda := fields[0]
	d := int(fields[1])
	if d < 1 || d > 64 {
		return nil, fmt.Errorf("core: implausible layer count %d", d)
	}
	// Validate untrusted header fields that would otherwise reach
	// constructors with panicking preconditions or huge allocations.
	if fields[6] > 1 || fields[9] > 1 || fields[13] > 1 {
		return nil, fmt.Errorf("core: malformed boolean header fields (%d, %d, %d)",
			fields[6], fields[9], fields[13])
	}
	if hasFilter := fields[6] == 1; hasFilter {
		if r := fields[7]; r < 1 || r > 16 {
			return nil, fmt.Errorf("core: implausible filter rows %d", r)
		}
		if b := fields[8]; b < 1 || b > 32 {
			return nil, fmt.Errorf("core: implausible filter bits %d", b)
		}
	}
	if ec := fields[10]; fields[9] == 1 && (ec < 1 || ec > 1<<24) {
		return nil, fmt.Errorf("core: implausible emergency size %d", ec)
	}
	cfg := Config{
		Lambda:            lambda,
		MemoryBytes:       1, // geometry is overwritten below
		Rw:                math.Float64frombits(fields[2]),
		Rl:                math.Float64frombits(fields[3]),
		Seed:              fields[4],
		D:                 d,
		Schedule:          ScheduleKind(fields[5]),
		DisableMiceFilter: fields[6] == 0,
		FilterRows:        int(fields[7]),
		FilterBits:        int(fields[8]),
		Emergency:         fields[9] == 1,
		EmergencyCounters: int(fields[10]),
	}
	s, err := New(cfg)
	if err != nil {
		return nil, fmt.Errorf("core: rebuilding snapshot config: %w", err)
	}
	s.failures, s.failedValue = fields[11], fields[12]
	s.merged = fields[13] == 1
	s.insertOps = fields[14]
	s.insertHashCalls = fields[15]
	s.queryOps.Store(fields[16])
	s.queryHashCalls.Store(fields[17])
	// Layers: replace the provisional geometry with the serialized one.
	for i := 0; i < d; i++ {
		w, err := read()
		if err != nil {
			return nil, fmt.Errorf("core: layer %d width: %w", i, err)
		}
		lam, err := read()
		if err != nil {
			return nil, fmt.Errorf("core: layer %d lambda: %w", i, err)
		}
		if w == 0 || w > 1<<26 {
			return nil, fmt.Errorf("core: implausible layer %d width %d", i, w)
		}
		s.widths[i] = int(w)
		s.lambdas[i] = lam
		layer := make([]bucket.Bucket, int(w))
		occ, err := read()
		if err != nil {
			return nil, fmt.Errorf("core: layer %d occupancy: %w", i, err)
		}
		for k := uint64(0); k < occ; k++ {
			var vals [4]uint64
			for vi := range vals {
				v, err := read()
				if err != nil {
					return nil, fmt.Errorf("core: layer %d bucket %d: %w", i, k, err)
				}
				vals[vi] = v
			}
			j := int(vals[0])
			if j < 0 || j >= int(w) {
				return nil, fmt.Errorf("core: bucket index %d out of range %d", j, w)
			}
			layer[j].Restore(vals[1], vals[2], vals[3])
		}
		s.layers[i] = layer
	}
	s.bucketBytes = bucketBytes(s.lambdas[0])
	if s.mice != nil {
		if err := s.mice.DecodeFrom(br); err != nil {
			return nil, fmt.Errorf("core: filter snapshot: %w", err)
		}
	}
	if s.emerg != nil {
		for {
			more, err := read()
			if err != nil {
				return nil, fmt.Errorf("core: emergency snapshot: %w", err)
			}
			if more == 0 {
				break
			}
			var vals [3]uint64
			for vi := range vals {
				v, err := read()
				if err != nil {
					return nil, fmt.Errorf("core: emergency entry: %w", err)
				}
				vals[vi] = v
			}
			if !s.emerg.RestoreEntry(spacesaving.Entry{Key: vals[0], Count: vals[1], Err: vals[2]}) {
				return nil, fmt.Errorf("core: emergency snapshot overflow or duplicate key %d", vals[0])
			}
		}
	}
	return s, nil
}

// Snapshot writes the sketch's full state, implementing sketch.Snapshotter.
// Unlike the Mergeable variants whose codecs serialize counters against the
// receiver's geometry, a ReliableSketch snapshot is self-contained (the
// config block rebuilds the geometry), so Restore accepts snapshots from
// any configuration.
func (s *Sketch) Snapshot(w io.Writer) error {
	_, err := s.WriteTo(w)
	return err
}

// Restore replaces the sketch's state with a snapshot written by WriteTo or
// Snapshot, implementing sketch.Snapshotter. The atomic instrumentation
// counters are re-seeded field by field (the struct cannot be copied
// wholesale), and the configuration — including geometry — is adopted from
// the snapshot.
func (s *Sketch) Restore(r io.Reader) error {
	loaded, err := ReadSketch(r)
	if err != nil {
		return err
	}
	s.cfg = loaded.cfg
	s.lambda = loaded.lambda
	s.layers = loaded.layers
	s.widths = loaded.widths
	s.lambdas = loaded.lambdas
	s.hashes = loaded.hashes
	s.mice = loaded.mice
	s.emerg = loaded.emerg
	s.bucketBytes = loaded.bucketBytes
	s.merged = loaded.merged
	s.failures = loaded.failures
	s.failedValue = loaded.failedValue
	s.insertOps = loaded.insertOps
	s.insertHashCalls = loaded.insertHashCalls
	s.queryOps.Store(loaded.queryOps.Load())
	s.queryHashCalls.Store(loaded.queryHashCalls.Load())
	return nil
}

// countingWriter tracks bytes written and the first error.
type countingWriter struct {
	w   io.Writer
	n   int64
	err error
}

func (c *countingWriter) Write(p []byte) (int, error) {
	if c.err != nil {
		return 0, c.err
	}
	n, err := c.w.Write(p)
	c.n += int64(n)
	c.err = err
	return n, err
}
