package core

import (
	"testing"

	"repro/internal/metrics"
	"repro/internal/stream"
)

func TestScheduleKindString(t *testing.T) {
	for k, want := range map[ScheduleKind]string{
		ScheduleGeometric:         "geometric",
		ScheduleArithmeticWidths:  "arith-widths",
		ScheduleArithmeticLambdas: "arith-lambdas",
		ScheduleArithmeticBoth:    "arith-both",
		ScheduleKind(99):          "unknown",
	} {
		if got := k.String(); got != want {
			t.Errorf("String(%d)=%q want %q", k, got, want)
		}
	}
}

func TestArithmeticSchedulesRespectBudgets(t *testing.T) {
	lams := arithmeticLambdaSchedule(100, 8)
	var sum uint64
	for i, l := range lams {
		if i > 0 && l > lams[i-1] {
			t.Errorf("lambda grew at %d", i)
		}
		sum += l
	}
	if sum > 100 {
		t.Errorf("Σλ=%d exceeds budget 100", sum)
	}
	ws := arithmeticWidthSchedule(1000, 8)
	total := 0
	for i, w := range ws {
		if w < 1 {
			t.Errorf("width %d at layer %d", w, i)
		}
		if i > 0 && w > ws[i-1] {
			t.Errorf("width grew at %d", i)
		}
		total += w
	}
	if total != 1000 {
		t.Errorf("widths sum to %d, want all 1000 buckets used", total)
	}
}

// TestAblationGeometricBeatsArithmetic reproduces the §3.2 claim: with the
// same tight memory, the geometric (double exponential) schedules keep
// every insertion under control while arithmetic schedules suffer
// thousands of insertion failures — each of which voids the certificate.
func TestAblationGeometricBeatsArithmetic(t *testing.T) {
	s := stream.IPTrace(300_000, 11)
	const mem = 32 << 10 // tight memory so schedule quality matters
	const lam = 25
	failures := func(kind ScheduleKind) uint64 {
		sk := MustNew(Config{Lambda: lam, MemoryBytes: mem, Seed: 11, Schedule: kind})
		metrics.Feed(sk, s)
		f, _ := sk.InsertionFailures()
		return f
	}
	geo := failures(ScheduleGeometric)
	if geo != 0 {
		t.Errorf("geometric schedules: %d insertion failures at 32KB, want 0", geo)
	}
	for _, kind := range []ScheduleKind{ScheduleArithmeticWidths, ScheduleArithmeticLambdas, ScheduleArithmeticBoth} {
		a := failures(kind)
		if a <= geo {
			t.Errorf("%v: %d failures not worse than geometric's %d (ablation claim violated)", kind, a, geo)
		}
		t.Logf("%v: %d insertion failures (geometric: %d)", kind, a, geo)
	}
}

// TestArithmeticStillSound: the ablation variants lose efficiency, not
// soundness — the certified interval must still hold.
func TestArithmeticStillSound(t *testing.T) {
	s := stream.Zipf(100_000, 10_000, 1.0, 12)
	for _, kind := range []ScheduleKind{ScheduleArithmeticWidths, ScheduleArithmeticLambdas, ScheduleArithmeticBoth} {
		sk := MustNew(Config{Lambda: 25, MemoryBytes: 256 << 10, Seed: 12, Schedule: kind})
		metrics.Feed(sk, s)
		rep := metrics.SensedError(sk, s)
		if fails, _ := sk.InsertionFailures(); fails == 0 && rep.Violations > 0 {
			t.Errorf("%v: %d interval violations without insertion failures", kind, rep.Violations)
		}
	}
}

func TestTheoreticalD(t *testing.T) {
	// d grows with N/Λ, very slowly (O(lnln)).
	d1 := TheoreticalD(1e6, 25, 2, 2.5, 1e-6)
	d2 := TheoreticalD(1e12, 25, 2, 2.5, 1e-6)
	if d1 < 1 || d2 < d1 {
		t.Errorf("TheoreticalD not monotone: %d (1e6) vs %d (1e12)", d1, d2)
	}
	if d2 > 12 {
		t.Errorf("TheoreticalD(1e12)=%d; lnln growth should stay small", d2)
	}
	if TheoreticalD(0, 25, 2, 2.5, 0.5) != 7 {
		t.Error("degenerate inputs should fall back to 7")
	}
}

func TestTrackedContainsHeavyKeys(t *testing.T) {
	s := stream.Zipf(200_000, 20_000, 1.2, 13)
	sk := NewFromMemory(256<<10, 25, 13)
	metrics.Feed(sk, s)
	tracked := map[uint64]bool{}
	for _, kv := range sk.Tracked() {
		tracked[kv.Key] = true
	}
	cap := sk.mice.Cap()
	for key, f := range s.Truth() {
		if f > sk.Lambda()+cap && !tracked[key] {
			t.Errorf("key %d with f=%d (> Λ+cap=%d) not tracked", key, f, sk.Lambda()+cap)
		}
	}
}

func TestHeavyHittersNoFalsePositives(t *testing.T) {
	s := stream.Zipf(200_000, 20_000, 1.2, 14)
	sk := NewFromMemory(256<<10, 25, 14)
	metrics.Feed(sk, s)
	truth := s.Truth()
	const threshold = 500
	hh := sk.HeavyHitters(threshold)
	if len(hh) == 0 {
		t.Fatal("no heavy hitters found")
	}
	for _, kv := range hh {
		if truth[kv.Key] <= threshold {
			t.Errorf("false positive: key %d has f=%d ≤ %d", kv.Key, truth[kv.Key], threshold)
		}
	}
	// Bounded misses: every key above threshold+Λ must be reported.
	reported := map[uint64]bool{}
	for _, kv := range hh {
		reported[kv.Key] = true
	}
	for key, f := range truth {
		if f > threshold+sk.Lambda() && !reported[key] {
			t.Errorf("missed key %d with f=%d > T+Λ", key, f)
		}
	}
}
