package core

import (
	"bytes"
	"testing"
)

// FuzzReadSketch hardens the snapshot decoder against corrupt and
// adversarial inputs: it must return an error or a usable sketch, never
// panic or hang.
func FuzzReadSketch(f *testing.F) {
	// Seed with a valid snapshot and some mutations.
	sk := NewFromMemory(16<<10, 25, 1)
	sk.Insert(1, 100)
	sk.Insert(2, 3)
	var buf bytes.Buffer
	if _, err := sk.WriteTo(&buf); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()
	f.Add(valid)
	f.Add(valid[:len(valid)/2])
	f.Add([]byte("RSK1"))
	f.Add([]byte{})
	mutated := append([]byte(nil), valid...)
	if len(mutated) > 10 {
		mutated[8] ^= 0xff
	}
	f.Add(mutated)

	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := ReadSketch(bytes.NewReader(data))
		if err != nil {
			return
		}
		// A successfully decoded sketch must answer queries safely.
		got.Insert(7, 1)
		est, mpe := got.QueryWithError(7)
		if est < 1 && mpe == 0 && est == 0 {
			// est may legitimately exceed 1 (collisions); it must not be
			// less than the value just inserted minus its own MPE.
			t.Errorf("restored sketch lost a fresh insert: est=%d mpe=%d", est, mpe)
		}
	})
}

// FuzzInsertQuery drives the sketch with arbitrary operation tapes and
// checks the certified interval on a shadow map.
func FuzzInsertQuery(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8})
	f.Add([]byte{0, 0, 0, 0})
	f.Fuzz(func(t *testing.T, tape []byte) {
		sk := NewFromMemory(8<<10, 10, 3)
		truth := map[uint64]uint64{}
		for i := 0; i+1 < len(tape); i += 2 {
			key := uint64(tape[i] % 32)
			val := uint64(tape[i+1]%8) + 1
			sk.Insert(key, val)
			truth[key] += val
		}
		if fails, _ := sk.InsertionFailures(); fails > 0 {
			return // certificate void by design; nothing to check
		}
		for key, want := range truth {
			est, mpe := sk.QueryWithError(key)
			if est < want || est-mpe > want {
				t.Fatalf("key %d: truth %d outside [%d, %d]", key, want, est-mpe, est)
			}
		}
	})
}
