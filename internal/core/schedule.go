package core

import "math"

// ScheduleKind selects how layer widths and lock thresholds decay across
// layers. The paper's Key Technique II (Double Exponential Control, §3.2)
// requires geometric decay of BOTH sequences; it explicitly warns that
// "modifying either parameter to follow an arithmetic sequence would
// thoroughly undermine the complexity of ReliableSketch". The arithmetic
// kinds exist to reproduce that ablation (see BenchmarkAblationSchedules).
type ScheduleKind int

const (
	// ScheduleGeometric is the paper's recommended double-exponential
	// configuration: w_i ∝ Rw^−i and λ_i ∝ Rl^−i.
	ScheduleGeometric ScheduleKind = iota
	// ScheduleArithmeticWidths decays widths linearly while keeping
	// thresholds geometric (ablation).
	ScheduleArithmeticWidths
	// ScheduleArithmeticLambdas decays thresholds linearly while keeping
	// widths geometric (ablation).
	ScheduleArithmeticLambdas
	// ScheduleArithmeticBoth decays both linearly (ablation).
	ScheduleArithmeticBoth
)

// String names the schedule for experiment tables.
func (k ScheduleKind) String() string {
	switch k {
	case ScheduleGeometric:
		return "geometric"
	case ScheduleArithmeticWidths:
		return "arith-widths"
	case ScheduleArithmeticLambdas:
		return "arith-lambdas"
	case ScheduleArithmeticBoth:
		return "arith-both"
	}
	return "unknown"
}

// arithmeticLambdaSchedule splits the error budget linearly:
// λ_i ∝ (d+1−i), normalized so Σλ_i ≤ budget.
func arithmeticLambdaSchedule(budget uint64, d int) []uint64 {
	out := make([]uint64, d)
	denom := d * (d + 1) / 2
	for i := 0; i < d; i++ {
		out[i] = uint64(float64(budget) * float64(d-i) / float64(denom))
	}
	return out
}

// arithmeticWidthSchedule splits a bucket budget linearly: w_i ∝ (d+1−i).
func arithmeticWidthSchedule(totalBuckets, d int) []int {
	if totalBuckets < d {
		totalBuckets = d
	}
	denom := d * (d + 1) / 2
	out := make([]int, d)
	used := 0
	for i := 0; i < d; i++ {
		w := totalBuckets * (d - i) / denom
		if w < 1 {
			w = 1
		}
		out[i] = w
		used += w
	}
	if used < totalBuckets {
		out[0] += totalBuckets - used
	}
	return out
}

// buildSchedules returns the width and threshold sequences for the
// configured kind.
func buildSchedules(kind ScheduleKind, totalBuckets int, rw float64, budget uint64, rl float64, d int) ([]int, []uint64) {
	var widths []int
	var lambdas []uint64
	switch kind {
	case ScheduleArithmeticWidths:
		widths = arithmeticWidthSchedule(totalBuckets, d)
		lambdas = lambdaSchedule(budget, rl, d)
	case ScheduleArithmeticLambdas:
		widths = widthSchedule(totalBuckets, rw, d)
		lambdas = arithmeticLambdaSchedule(budget, d)
	case ScheduleArithmeticBoth:
		widths = arithmeticWidthSchedule(totalBuckets, d)
		lambdas = arithmeticLambdaSchedule(budget, d)
	default:
		widths = widthSchedule(totalBuckets, rw, d)
		lambdas = lambdaSchedule(budget, rl, d)
	}
	return widths, lambdas
}

// TheoreticalD returns the layer depth Theorem 4 prescribes: the largest d
// whose layer failure exponent p_d·α_d/(λ_d·γ_d) still meets 2·ln(1/Δ)
// (the integer root of Rl^d/(RwRl)^(2^d+d) = Δ1·(Λ/N)·ln(1/Δ)). It grows
// as O(lnln(N/Λ)), the paper's headline depth. The same computation lives
// in internal/analysis (Params.DepthFor) with the full Theorem 2–4
// sequences; this copy keeps core dependency-free.
func TheoreticalD(n, lambda float64, rw, rl, delta float64) int {
	if n <= 0 || lambda <= 0 || delta <= 0 || delta >= 1 || rw <= 1 || rl <= 1 || rw*rl < 2 {
		return 7
	}
	need := 2 * math.Log(1/delta)
	exponent := func(d float64) float64 {
		pi := math.Pow(rw*rl, -(math.Pow(2, d-1) + 4))
		alpha := n / math.Pow(rw*rl, d-1)
		lam := lambda * (rl - 1) / math.Pow(rl, d)
		gamma := math.Pow(rw*rl, math.Pow(2, d-1)-1)
		return pi * alpha / (lam * gamma)
	}
	d := 1
	for d < 64 && exponent(float64(d+1)) >= need {
		d++
	}
	return d
}
