package core

import (
	"testing"

	"repro/internal/metrics"
	"repro/internal/sketch"
	"repro/internal/stream"
)

var (
	_ sketch.Sketch       = (*Sketch)(nil)
	_ sketch.ErrorBounded = (*Sketch)(nil)
	_ sketch.Resettable   = (*Sketch)(nil)
)

func TestConfigValidation(t *testing.T) {
	cases := []Config{
		{},                                       // nothing specified
		{Lambda: 25},                             // no memory, no N
		{MemoryBytes: 1024},                      // no Λ, no N
		{Lambda: 25, MemoryBytes: 1024, Rw: 0.5}, // bad ratio
		{Lambda: 25, MemoryBytes: 1024, Rl: 1.0}, // bad ratio
		{Lambda: 25, MemoryBytes: 1024, D: -1},   // bad depth
	}
	for i, cfg := range cases {
		if _, err := New(cfg); err == nil {
			t.Errorf("case %d: expected error for %+v", i, cfg)
		}
	}
	if _, err := New(Config{Lambda: 25, MemoryBytes: 1 << 20}); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
}

func TestGeometrySchedules(t *testing.T) {
	s := NewFromMemory(1<<20, 25, 1)
	if s.Lambda() != 25 {
		t.Fatalf("Lambda=%d want 25", s.Lambda())
	}
	d := s.Layers()
	if d < 7 {
		t.Fatalf("d=%d; paper recommends ≥7", d)
	}
	// Widths strictly decay (until the 1-bucket floor).
	for i := 1; i < d; i++ {
		if s.LayerWidth(i) > s.LayerWidth(i-1) {
			t.Errorf("width grew at layer %d: %d > %d", i, s.LayerWidth(i), s.LayerWidth(i-1))
		}
	}
	// Thresholds non-increasing and Σλ_i + filter cap ≤ Λ.
	var sum uint64
	for i := 0; i < d; i++ {
		if i > 0 && s.LayerLambda(i) > s.LayerLambda(i-1) {
			t.Errorf("lambda grew at layer %d", i)
		}
		sum += s.LayerLambda(i)
	}
	if sum+s.mice.Cap() > s.Lambda() {
		t.Errorf("Σλ + cap = %d exceeds Λ = %d", sum+s.mice.Cap(), s.Lambda())
	}
	// Memory accounting stays within the budget.
	if got := s.MemoryBytes(); got > 1<<20 {
		t.Errorf("MemoryBytes=%d exceeds budget %d", got, 1<<20)
	}
}

func TestDeriveMemoryFromLambda(t *testing.T) {
	s := MustNew(Config{Lambda: 25, ExpectedTotal: 1_000_000, Seed: 1})
	// W = (RwRl)²/((Rw−1)(Rl−1)) · N/Λ = 25/1.5 · 40000 ≈ 666k... buckets
	// of 9 bytes plus filter; just sanity-check the order of magnitude.
	mem := s.MemoryBytes()
	if mem < 100_000 || mem > 20_000_000 {
		t.Errorf("derived memory %d out of plausible range", mem)
	}
}

func TestDeriveLambdaFromMemory(t *testing.T) {
	s := MustNew(Config{MemoryBytes: 1 << 20, ExpectedTotal: 10_000_000, Seed: 1})
	if s.Lambda() == 0 {
		t.Fatal("Lambda not derived")
	}
	// More memory ⇒ smaller Λ.
	s2 := MustNew(Config{MemoryBytes: 4 << 20, ExpectedTotal: 10_000_000, Seed: 1})
	if s2.Lambda() >= s.Lambda() {
		t.Errorf("Λ did not shrink with memory: %d (1MB) vs %d (4MB)", s.Lambda(), s2.Lambda())
	}
}

func TestSingleKeyExact(t *testing.T) {
	s := NewFromMemory(64<<10, 25, 1)
	for i := 0; i < 1000; i++ {
		s.Insert(42, 1)
	}
	est, mpe := s.QueryWithError(42)
	if est < 1000 {
		t.Fatalf("underestimate: %d < 1000", est)
	}
	if est-mpe > 1000 {
		t.Fatalf("lower bound %d exceeds truth", est-mpe)
	}
	if mpe > s.Lambda() {
		t.Fatalf("MPE %d exceeds Λ %d", mpe, s.Lambda())
	}
}

func TestWeightedValuesExactForSingleKeys(t *testing.T) {
	// Distinct keys with no collisions (huge memory) must be exact.
	s := NewFromMemory(1<<22, 1000, 7)
	truth := map[uint64]uint64{}
	for k := uint64(0); k < 100; k++ {
		v := (k + 1) * 37
		s.Insert(k, v)
		truth[k] = v
	}
	for k, f := range truth {
		est, mpe := s.QueryWithError(k)
		if est < f || est-mpe > f {
			t.Fatalf("key %d: truth %d outside [%d,%d]", k, f, est-mpe, est)
		}
	}
}

// feedAndCheckIntervals streams s through sk and verifies the certified
// interval for every key, returning the evaluation report.
func feedAndCheckIntervals(t *testing.T, sk *Sketch, s *stream.Stream) metrics.Report {
	t.Helper()
	metrics.Feed(sk, s)
	if fails, val := sk.InsertionFailures(); fails > 0 && sk.emerg == nil {
		t.Logf("note: %d insertion failures (value %d) without emergency layer", fails, val)
	}
	rep := metrics.SensedError(sk, s)
	if rep.Violations > 0 {
		t.Errorf("%d certified-interval violations", rep.Violations)
	}
	return metrics.Evaluate(sk, s, sk.Lambda())
}

func TestIntervalInvariantZipf(t *testing.T) {
	s := stream.Zipf(200_000, 20_000, 1.0, 3)
	sk := NewFromMemory(256<<10, 25, 3)
	rep := feedAndCheckIntervals(t, sk, s)
	if fails, _ := sk.InsertionFailures(); fails != 0 {
		t.Fatalf("%d insertion failures at comfortable memory", fails)
	}
	if rep.Outliers != 0 {
		t.Errorf("outliers=%d want 0 (Λ=%d, mem=256KB)", rep.Outliers, sk.Lambda())
	}
}

func TestIntervalInvariantRaw(t *testing.T) {
	s := stream.Zipf(200_000, 20_000, 1.0, 4)
	sk := NewRaw(256<<10, 25, 4)
	rep := feedAndCheckIntervals(t, sk, s)
	if rep.Outliers != 0 {
		t.Errorf("raw variant outliers=%d want 0", rep.Outliers)
	}
	if sk.Name() != "Ours(Raw)" {
		t.Errorf("Name=%q", sk.Name())
	}
}

func TestZeroOutliersAcrossDatasets(t *testing.T) {
	const n = 100_000
	for _, mk := range []func() *stream.Stream{
		func() *stream.Stream { return stream.IPTrace(n, 5) },
		func() *stream.Stream { return stream.WebStream(n, 5) },
		func() *stream.Stream { return stream.Hadoop(n, 5) },
		func() *stream.Stream { return stream.Zipf(n, 10_000, 3.0, 5) },
	} {
		s := mk()
		sk := NewFromMemory(256<<10, 25, 5)
		rep := feedAndCheckIntervals(t, sk, s)
		if rep.Outliers != 0 {
			t.Errorf("%s: outliers=%d want 0", s.Name, rep.Outliers)
		}
	}
}

func TestMPENeverExceedsLambda(t *testing.T) {
	// The certified MPE must respect Λ for every key even under memory
	// pressure, as long as insertion didn't fail (MPE = cap + Σλ_i ≤ Λ).
	s := stream.Zipf(100_000, 10_000, 1.0, 6)
	sk := NewFromMemory(64<<10, 25, 6)
	metrics.Feed(sk, s)
	for key := range s.Truth() {
		if _, mpe := sk.QueryWithError(key); mpe > sk.Lambda() {
			// Keys that hit the emergency path may exceed; only flag when no
			// failures occurred.
			if f, _ := sk.InsertionFailures(); f == 0 {
				t.Fatalf("MPE %d > Λ %d with zero failures", mpe, sk.Lambda())
			}
		}
	}
}

func TestEmergencyLayerUnconditionalBound(t *testing.T) {
	// Starve the sketch so insertions fail, and verify the emergency layer
	// restores the certified interval for every key.
	s := stream.Zipf(50_000, 5_000, 0.5, 7)
	sk := MustNew(Config{
		Lambda: 5, MemoryBytes: 2 << 10, Seed: 7,
		Emergency: true, EmergencyCounters: 4096,
	})
	metrics.Feed(sk, s)
	fails, _ := sk.InsertionFailures()
	if fails == 0 {
		t.Skip("no insertion failures provoked; starvation config too generous")
	}
	rep := metrics.SensedError(sk, s)
	if rep.Violations > 0 {
		t.Errorf("%d interval violations despite emergency layer (failures=%d)",
			rep.Violations, fails)
	}
}

func TestStopLayerDistribution(t *testing.T) {
	s := stream.Zipf(100_000, 10_000, 1.0, 8)
	sk := NewFromMemory(128<<10, 25, 8)
	metrics.Feed(sk, s)
	counts := map[int]int{}
	for key := range s.Truth() {
		counts[sk.StopLayer(key)]++
	}
	// Most keys must resolve in the filter or first layers; deep layers
	// hold a fast-shrinking minority (Figure 19a).
	shallow := counts[-1] + counts[0] + counts[1]
	if shallow < s.Distinct()*8/10 {
		t.Errorf("only %d/%d keys resolve in filter+2 layers", shallow, s.Distinct())
	}
	deep := 0
	for l, c := range counts {
		if l >= 4 {
			deep += c
		}
	}
	if deep > s.Distinct()/10 {
		t.Errorf("%d keys in layers ≥4; decay too slow", deep)
	}
}

func TestHashCallStats(t *testing.T) {
	s := stream.Zipf(50_000, 5_000, 1.0, 9)
	sk := NewFromMemory(512<<10, 25, 9)
	metrics.Feed(sk, s)
	for key := range s.Truth() {
		sk.Query(key)
	}
	ins, qry := sk.HashCallStats()
	if ins <= 0 || qry <= 0 {
		t.Fatalf("stats not recorded: insert=%f query=%f", ins, qry)
	}
	// With ample memory and a 2-row filter the averages approach 2 (filter)
	// + a small layer tail; the paper's Figure 16 plateau is ≈3.
	if ins > 6 {
		t.Errorf("insert hash calls %.2f too high at ample memory", ins)
	}
	raw := NewRaw(512<<10, 25, 9)
	metrics.Feed(raw, s)
	rawIns, _ := raw.HashCallStats()
	if rawIns > 3 {
		t.Errorf("raw insert hash calls %.2f; Figure 16 plateau is ≈1", rawIns)
	}
}

func TestQueryUnseenKey(t *testing.T) {
	sk := NewFromMemory(64<<10, 25, 10)
	sk.Insert(1, 100)
	est, mpe := sk.QueryWithError(999999)
	// An unseen key's truth is 0: est−mpe must be ≤ 0, i.e. est == mpe.
	if est != mpe {
		t.Errorf("unseen key: est=%d mpe=%d; lower bound must be 0", est, mpe)
	}
}

func TestReset(t *testing.T) {
	sk := NewFromMemory(64<<10, 25, 11)
	sk.Insert(7, 50)
	sk.Reset()
	if got := sk.Query(7); got != 0 {
		t.Errorf("Query after Reset = %d", got)
	}
	if f, v := sk.InsertionFailures(); f != 0 || v != 0 {
		t.Error("failure counters survived Reset")
	}
}

func TestDeterminismAcrossSeeds(t *testing.T) {
	s := stream.Zipf(20_000, 2_000, 1.0, 12)
	a := NewFromMemory(64<<10, 25, 99)
	b := NewFromMemory(64<<10, 25, 99)
	metrics.Feed(a, s)
	metrics.Feed(b, s)
	for key := range s.Truth() {
		if a.Query(key) != b.Query(key) {
			t.Fatal("same seed produced different estimates")
		}
	}
	c := NewFromMemory(64<<10, 25, 100)
	metrics.Feed(c, s)
	diff := false
	for key := range s.Truth() {
		if a.Query(key) != c.Query(key) {
			diff = true
			break
		}
	}
	if !diff {
		t.Error("different seeds produced identical estimates everywhere (suspicious)")
	}
}

func TestStringSummary(t *testing.T) {
	sk := NewFromMemory(64<<10, 25, 1)
	if s := sk.String(); len(s) == 0 {
		t.Error("empty String()")
	}
}
