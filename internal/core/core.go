package core

import (
	"fmt"
	"math"
	"sync/atomic"

	"repro/internal/bucket"
	"repro/internal/filter"
	"repro/internal/hash"
	"repro/internal/spacesaving"
)

// Sketch is a ReliableSketch instance. Build one with New or the
// convenience constructors; the zero value is not usable.
//
// Sketch is single-writer, like the hardware pipelines it models; wrap it in
// sketch.Sharded for concurrent insertion. Queries are safe for any number
// of concurrent readers as long as no insertion runs (the epoch ring's
// sealed-window contract): the query path touches no shared scratch and its
// instrumentation counters are atomic.
type Sketch struct {
	cfg     Config
	lambda  uint64 // Λ
	layers  [][]bucket.Bucket
	widths  []int
	lambdas []uint64 // λ_i per layer
	hashes  *hash.Family
	mice    *filter.Filter      // nil when disabled
	emerg   *spacesaving.Sketch // nil when disabled

	// batchIdx caches per-layer bucket indexes across runs of equal keys in
	// InsertBatch, so bursty streams hash each key once per run instead of
	// once per item. Single-writer scratch, like Insert itself.
	batchIdx []int

	bucketBytes int

	// merged marks a sketch that absorbed another via Merge. Merged bucket
	// state keeps every certified interval sound, but the early query-stop
	// heuristics (replaceable bucket, candidate hit) are only proven for
	// insertion-built state, so merged sketches walk every layer whose NO
	// reached the lock threshold.
	merged bool

	// Instrumentation for the paper's in-depth experiments. Query-side
	// counters are atomic so concurrent sealed-window readers never race.
	failures        uint64 // insertions with leftover value after the last layer
	failedValue     uint64 // total value that failed to insert
	insertOps       uint64
	insertHashCalls uint64
	queryOps        atomic.Uint64
	queryHashCalls  atomic.Uint64
}

// New builds a ReliableSketch from cfg, resolving defaults and the
// Lambda/Memory sizing rules of §3.2.
func New(cfg Config) (*Sketch, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	s := &Sketch{cfg: cfg}

	switch {
	case cfg.Lambda > 0 && cfg.MemoryBytes > 0:
		s.lambda = cfg.Lambda
	case cfg.Lambda > 0:
		// Memory from Λ and N: W = const · N/Λ buckets.
		s.lambda = cfg.Lambda
		w := sizingConstant(cfg.Rw, cfg.Rl) * float64(cfg.ExpectedTotal) / float64(cfg.Lambda)
		bb := bucketBytes(firstLambda(cfg.Lambda, cfg.Rl))
		mem := int(w) * bb
		if !cfg.DisableMiceFilter {
			mem = int(float64(mem) / (1 - cfg.FilterFraction))
		}
		cfg.MemoryBytes = mem
		s.cfg.MemoryBytes = mem
	default:
		// Λ from memory and N: invert W(Λ). Bucket width depends weakly on
		// Λ through the NO counter, so iterate the fixed point twice.
		lambda := uint64(25)
		for iter := 0; iter < 3; iter++ {
			bb := bucketBytes(firstLambda(lambda, cfg.Rl))
			budget := cfg.MemoryBytes
			if !cfg.DisableMiceFilter {
				budget = int(float64(budget) * (1 - cfg.FilterFraction))
			}
			w := budget / bb
			if w < cfg.D {
				w = cfg.D
			}
			l := sizingConstant(cfg.Rw, cfg.Rl) * float64(cfg.ExpectedTotal) / float64(w)
			lambda = uint64(math.Ceil(l))
			if lambda < 1 {
				lambda = 1
			}
		}
		s.lambda = lambda
	}

	// Split memory: filter share, then buckets.
	bucketBudget := cfg.MemoryBytes
	if !cfg.DisableMiceFilter {
		filterBytes := int(float64(cfg.MemoryBytes) * cfg.FilterFraction)
		s.mice = filter.NewBytes(filterBytes, cfg.FilterRows, cfg.FilterBits, cfg.Seed^0xf11e)
		bucketBudget -= s.mice.MemoryBytes()
	}

	// The filter's saturation cap counts against the total error budget Λ:
	// a query that stops at the filter reports MPE ≤ cap, and one that
	// continues carries the cap into the layer walk. Scheduling the layer
	// thresholds over Λ − cap keeps the certified MPE ≤ Λ for every key.
	layerBudget := s.lambda
	if s.mice != nil {
		if c := s.mice.Cap(); c < layerBudget {
			layerBudget -= c
		} else {
			layerBudget = 1
		}
	}
	// Thresholds first (the NO counter width, and hence bucket size, depends
	// on λ1), then widths from the remaining budget.
	_, s.lambdas = buildSchedules(cfg.Schedule, cfg.D, cfg.Rw, layerBudget, cfg.Rl, cfg.D)
	s.bucketBytes = bucketBytes(s.lambdas[0])
	totalBuckets := bucketBudget / s.bucketBytes
	if totalBuckets < cfg.D {
		totalBuckets = cfg.D
	}
	s.widths, _ = buildSchedules(cfg.Schedule, totalBuckets, cfg.Rw, layerBudget, cfg.Rl, cfg.D)
	s.layers = make([][]bucket.Bucket, cfg.D)
	for i, w := range s.widths {
		s.layers[i] = make([]bucket.Bucket, w)
	}
	s.hashes = hash.NewFamily(cfg.Seed, cfg.D)
	s.batchIdx = make([]int, cfg.D)

	if cfg.Emergency {
		s.emerg = spacesaving.New(cfg.EmergencyCounters)
	}
	return s, nil
}

// firstLambda is λ1 for a given Λ and Rl, used for NO-width accounting.
func firstLambda(lambda uint64, rl float64) uint64 {
	return uint64(float64(lambda) * (rl - 1) / rl)
}

// MustNew is New for tests and examples with known-good configurations.
func MustNew(cfg Config) *Sketch {
	s, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return s
}

// NewFromMemory builds a sketch with the default recommended parameters for
// a memory budget and error tolerance — the constructor used by every
// comparison experiment.
func NewFromMemory(memBytes int, lambda uint64, seed uint64) *Sketch {
	return MustNew(Config{Lambda: lambda, MemoryBytes: memBytes, Seed: seed})
}

// NewRaw is NewFromMemory without the mice filter (the paper's "Ours(Raw)"
// variant: faster, slightly less memory-efficient on mice-heavy workloads).
func NewRaw(memBytes int, lambda uint64, seed uint64) *Sketch {
	return MustNew(Config{Lambda: lambda, MemoryBytes: memBytes, Seed: seed,
		DisableMiceFilter: true})
}

// Lambda returns the error tolerance Λ the sketch was built for.
func (s *Sketch) Lambda() uint64 { return s.lambda }

// Layers returns the number of bucket layers d.
func (s *Sketch) Layers() int { return len(s.layers) }

// LayerWidth returns the number of buckets in layer i (0-based).
func (s *Sketch) LayerWidth(i int) int { return s.widths[i] }

// LayerLambda returns the lock threshold λ of layer i (0-based).
func (s *Sketch) LayerLambda(i int) uint64 { return s.lambdas[i] }

// Insert adds value to key's sum (Algorithm 1). The value cascades through
// the mice filter and the bucket layers; any portion that survives all d
// layers is an insertion failure, which the emergency layer absorbs when
// enabled.
func (s *Sketch) Insert(key, value uint64) {
	s.insertOps++
	v := value
	// The key-side hash mix is shared between the mice filter and the
	// layers (hash.PreKey), so a cascade that touches the filter plus k
	// layers pays one mix plus filter-rows+k finalizer rounds, not two per
	// hash call.
	pk := hash.PreKey(key)
	if s.mice != nil {
		v = s.mice.InsertPre(pk, v)
		if v == 0 {
			return
		}
	}
	for i := range s.layers {
		j := s.hashes.BucketPre(i, pk, s.widths[i])
		s.insertHashCalls++
		v = s.layers[i][j].InsertCapped(key, v, s.lambdas[i])
		if v == 0 {
			return
		}
	}
	// Insertion failure: value left after the last layer (§3.2). Theorems
	// 2–4 make this double-exponentially unlikely at recommended sizes.
	s.failures++
	s.failedValue += v
	if s.emerg != nil {
		s.emerg.Insert(key, v)
	}
}

// Query returns the estimated value sum of key.
func (s *Sketch) Query(key uint64) uint64 {
	est, _ := s.QueryWithError(key)
	return est
}

// QueryWithError returns the estimate and its certified Maximum Possible
// Error (Algorithm 2). Absent insertion failure — or always, when the
// emergency layer is enabled — the true sum lies in [est − mpe, est].
func (s *Sketch) QueryWithError(key uint64) (est, mpe uint64) {
	s.queryOps.Add(1)
	var hashCalls uint64
	est, mpe = s.queryWalk(key, &hashCalls)
	s.queryHashCalls.Add(hashCalls)
	return est, mpe
}

// queryWalk is the uninstrumented layer walk shared by QueryWithError and
// the batch path: hash calls accumulate into the caller's counter so batch
// queries pay one atomic add per batch instead of one per key.
func (s *Sketch) queryWalk(key uint64, hashCalls *uint64) (est, mpe uint64) {
	pk := hash.PreKey(key)
	if s.mice != nil {
		m, saturated := s.mice.QueryPre(pk)
		est += m
		mpe += m
		if !saturated {
			return est, mpe
		}
	}
	for i := range s.layers {
		j := s.hashes.BucketPre(i, pk, s.widths[i])
		*hashCalls++
		b := &s.layers[i][j]
		e, _ := b.Query(key)
		est += e
		mpe += b.NO
		if s.stopAt(b, i, key) {
			return est, mpe
		}
	}
	if s.emerg != nil {
		e, m := s.emerg.QueryWithError(key)
		est += e
		mpe += m
	}
	return est, mpe
}

// stopAt reports whether the layer walk may stop at bucket b in layer i:
// the layer proves the key's value went no deeper. An unlocked bucket
// (NO below the lock threshold) never overflowed, which stays true under
// Merge because merged NO totals only grow. The two sharper stops — the
// bucket is replaceable (YES == NO) or holds the key as candidate — are
// proven only for insertion-built state, so a merged sketch skips them and
// walks on; visiting extra layers adds matching est/mpe slack and keeps
// every interval sound.
func (s *Sketch) stopAt(b *bucket.Bucket, i int, key uint64) bool {
	if b.NO < s.lambdas[i] {
		return true
	}
	if s.merged {
		return false
	}
	return b.YES == b.NO || (b.Occupied() && b.ID == key)
}

// StopLayer reports which layer a key's queries terminate in: -1 for the
// mice filter, 0..d−1 for bucket layers, d when the walk exhausts all
// layers (possible insertion failure). Used by the Figure 19a layer
// distribution, since the query stop layer equals the layer where the key's
// latest insertion concluded.
func (s *Sketch) StopLayer(key uint64) int {
	if s.mice != nil {
		if _, saturated := s.mice.Query(key); !saturated {
			return -1
		}
	}
	for i := range s.layers {
		j := s.hashes.Bucket(i, key, s.widths[i])
		if s.stopAt(&s.layers[i][j], i, key) {
			return i
		}
	}
	return len(s.layers)
}

// InsertionFailures reports how many Insert calls left value uninserted
// after the final layer, and the total uninserted value. Nonzero failures
// void the certified bound unless the emergency layer is enabled.
func (s *Sketch) InsertionFailures() (count, value uint64) {
	return s.failures, s.failedValue
}

// HashCallStats returns the average number of hash-function calls per
// insertion and per query so far — the quantity plotted in Figure 16. The
// mice filter contributes exactly 2 calls per touched operation (with the
// default 2-row filter) and tracks insert and query hashing separately, so
// the attribution is exact, not prorated. The only residual approximation:
// StopLayer probes the filter through its query path, so interleaving
// StopLayer calls with this accounting inflates the per-query average.
func (s *Sketch) HashCallStats() (perInsert, perQuery float64) {
	var miceIns, miceQry uint64
	if s.mice != nil {
		miceIns, miceQry = s.mice.HashCallsByOp()
	}
	if s.insertOps > 0 {
		perInsert = float64(s.insertHashCalls+miceIns) / float64(s.insertOps)
	}
	if qOps := s.queryOps.Load(); qOps > 0 {
		perQuery = float64(s.queryHashCalls.Load()+miceQry) / float64(qOps)
	}
	return perInsert, perQuery
}

// MemoryBytes reports the accounted footprint: bit-packed filter plus
// bucket layers (32-bit YES + 32-bit ID + NO wide enough for λ1), plus the
// emergency layer when enabled.
func (s *Sketch) MemoryBytes() int {
	total := 0
	if s.mice != nil {
		total += s.mice.MemoryBytes()
	}
	for _, w := range s.widths {
		total += w * s.bucketBytes
	}
	if s.emerg != nil {
		total += s.emerg.MemoryBytes()
	}
	return total
}

// Name identifies the variant for experiment tables.
func (s *Sketch) Name() string {
	if s.mice == nil {
		return "Ours(Raw)"
	}
	return "Ours"
}

// Reset clears all layers in place for epoch-based reuse.
func (s *Sketch) Reset() {
	if s.mice != nil {
		s.mice.Reset()
	}
	for i := range s.layers {
		for j := range s.layers[i] {
			s.layers[i][j].Reset()
		}
	}
	if s.emerg != nil {
		s.emerg.Reset()
	}
	s.merged = false
	s.failures, s.failedValue = 0, 0
	s.insertOps, s.insertHashCalls = 0, 0
	s.queryOps.Store(0)
	s.queryHashCalls.Store(0)
}

// String summarizes the geometry for debugging and experiment logs.
func (s *Sketch) String() string {
	return fmt.Sprintf("ReliableSketch{Λ=%d, d=%d, widths=%v, λ=%v, filter=%v, mem=%dB}",
		s.lambda, len(s.layers), s.widths, s.lambdas, s.mice != nil, s.MemoryBytes())
}
