package core

import (
	"repro/internal/hash"
	"repro/internal/stream"
)

// InsertBatch is the native bulk-ingestion path: the same cascade as Insert
// with the per-operation instrumentation hoisted out of the loop and the
// per-layer bucket indexes cached across runs of equal keys — bursty
// streams repeat keys back to back, so a run hashes its key once per layer
// reached instead of once per item, and the key-side hash mix is shared
// across layers (hash.PreKey). Estimates after InsertBatch are identical to
// item-at-a-time insertion, and the hash-call accounting can only come out
// lower (the amortization is the optimization — the cascade itself cannot
// be reordered, since bucket state depends on insertion order).
func (s *Sketch) InsertBatch(items []stream.Item) {
	var hashCalls uint64
	mice := s.mice
	idx := s.batchIdx
	var prevKey, pk uint64
	cached := 0 // leading layers of idx valid for prevKey
	havePrev := false
	for _, it := range items {
		if !havePrev || it.Key != prevKey {
			prevKey, havePrev = it.Key, true
			pk = hash.PreKey(it.Key)
			cached = 0
		}
		v := it.Value
		if mice != nil {
			if v = mice.InsertPre(pk, v); v == 0 {
				continue
			}
		}
		for i := range s.layers {
			if i >= cached {
				idx[i] = s.hashes.BucketPre(i, pk, s.widths[i])
				hashCalls++
				cached = i + 1
			}
			if v = s.layers[i][idx[i]].InsertCapped(it.Key, v, s.lambdas[i]); v == 0 {
				break
			}
		}
		if v != 0 {
			s.failures++
			s.failedValue += v
			if s.emerg != nil {
				s.emerg.Insert(it.Key, v)
			}
		}
	}
	s.insertOps += uint64(len(items))
	s.insertHashCalls += hashCalls
}
