package core

import "repro/internal/stream"

// InsertBatch is the native bulk-ingestion path: the same cascade as Insert
// with the per-operation instrumentation hoisted out of the loop, so the
// hot path touches only the filter and the bucket layers. Estimates after
// InsertBatch are identical to item-at-a-time insertion, and the hash-call
// accounting matches exactly (the cascade itself cannot be amortized —
// bucket state depends on insertion order).
func (s *Sketch) InsertBatch(items []stream.Item) {
	var hashCalls uint64
	mice := s.mice
	for _, it := range items {
		v := it.Value
		if mice != nil {
			if v = mice.Insert(it.Key, v); v == 0 {
				continue
			}
		}
		for i := range s.layers {
			j := s.hashes.Bucket(i, it.Key, s.widths[i])
			hashCalls++
			if v = s.layers[i][j].InsertCapped(it.Key, v, s.lambdas[i]); v == 0 {
				break
			}
		}
		if v != 0 {
			s.failures++
			s.failedValue += v
			if s.emerg != nil {
				s.emerg.Insert(it.Key, v)
			}
		}
	}
	s.insertOps += uint64(len(items))
	s.insertHashCalls += hashCalls
}
