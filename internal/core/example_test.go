package core_test

import (
	"fmt"

	"repro/internal/core"
)

// The basic workflow: configure by tolerance and expected stream size,
// insert key-value pairs, query with certified bounds.
func Example() {
	sk := core.MustNew(core.Config{
		Lambda:        25,      // every key's error stays ≤ 25
		ExpectedTotal: 100_000, // anticipated Σ f(e)
		Seed:          1,
	})
	sk.Insert(42, 1000)
	sk.Insert(42, 500)
	sk.Insert(7, 3)

	est, mpe := sk.QueryWithError(42)
	fmt.Printf("key 42: true sum ∈ [%d, %d]\n", est-mpe, est)
	fmt.Printf("within tolerance: %v\n", mpe <= sk.Lambda())
	// Output:
	// key 42: true sum ∈ [1497, 1500]
	// within tolerance: true
}

// Sizing by memory budget: when memory is fixed (a switch stage, an SRAM
// block), the error tolerance Λ is derived from the expected stream size.
func ExampleConfig_memoryBudget() {
	sk := core.MustNew(core.Config{
		MemoryBytes:   8 << 20,    // 8 MB
		ExpectedTotal: 10_000_000, // 10M items
		Seed:          1,
	})
	fmt.Printf("derived Λ = %d\n", sk.Lambda())
	// Output:
	// derived Λ = 224
}

// HeavyHitters reports keys whose certified lower bound clears a
// threshold: no false positives, misses bounded by Λ.
func ExampleSketch_HeavyHitters() {
	sk := core.NewFromMemory(64<<10, 25, 1)
	for i := 0; i < 5000; i++ {
		sk.Insert(1001, 1) // one heavy flow
	}
	for k := uint64(0); k < 100; k++ {
		sk.Insert(k, 1) // background mice
	}
	for _, hh := range sk.HeavyHitters(1000) {
		fmt.Printf("flow %d ≥ %d\n", hh.Key, 1000)
	}
	// Output:
	// flow 1001 ≥ 1000
}
