package core

import (
	"fmt"

	"repro/internal/sketch"
)

// Merge folds another ReliableSketch built from the same Spec (identical
// Λ, geometry, and hash seed) into the receiver, so that afterwards every
// certified interval [est − mpe, est] contains the UNION stream's true sum.
//
// The merge is layer-local: buckets at the same position combine votes
// (bucket.Merge), filter counters add saturating at the counter word
// (filter.Merge), and the emergency Space-Saving layers union with error
// composition. Two costs are inherent and documented rather than hidden:
//
//   - Merged NO totals may exceed a layer's lock threshold λ, so the
//     per-key certified MPE of a merged sketch is bounded by the SUM of the
//     parts' certificates (≤ k·Λ for k merged parts with the emergency
//     layer on), not by a single Λ — exactly the bound the netsum collector
//     advertises for estimate-summing, now available from one sketch.
//   - The early query-stop heuristics are disabled (see stopAt), trading a
//     few extra layer reads per query for soundness.
//
// The argument is read, never written; the receiver must not be inserted
// into concurrently.
func (s *Sketch) Merge(other sketch.Sketch) error {
	o, ok := other.(*Sketch)
	if !ok {
		return sketch.MergeIncompatible(s, other, fmt.Sprintf("not a ReliableSketch (%T)", other))
	}
	if err := s.compatible(o); err != nil {
		return err
	}
	if s.mice != nil {
		if !s.mice.Merge(o.mice) {
			return sketch.MergeIncompatible(s, other, "mice filter geometry differs")
		}
	}
	for i := range s.layers {
		dst, src := s.layers[i], o.layers[i]
		for j := range dst {
			dst[j].Merge(src[j])
		}
	}
	if s.emerg != nil && o.emerg != nil {
		if err := s.emerg.Merge(o.emerg); err != nil {
			return err
		}
	}
	s.merged = true
	s.failures += o.failures
	s.failedValue += o.failedValue
	s.insertOps += o.insertOps
	s.insertHashCalls += o.insertHashCalls
	s.queryOps.Add(o.queryOps.Load())
	s.queryHashCalls.Add(o.queryHashCalls.Load())
	return nil
}

// compatible verifies the two sketches hash and size identically — the
// same-Spec contract every Mergeable implementation enforces. Positional
// bucket merging is only meaningful when every layer has the same width and
// the same derived hash seeds.
func (s *Sketch) compatible(o *Sketch) error {
	switch {
	case s.cfg.Seed != o.cfg.Seed:
		return sketch.MergeIncompatible(s, o, fmt.Sprintf("seed %d vs %d", s.cfg.Seed, o.cfg.Seed))
	case s.lambda != o.lambda:
		return sketch.MergeIncompatible(s, o, fmt.Sprintf("Λ %d vs %d", s.lambda, o.lambda))
	case len(s.layers) != len(o.layers):
		return sketch.MergeIncompatible(s, o, fmt.Sprintf("%d vs %d layers", len(s.layers), len(o.layers)))
	case (s.mice == nil) != (o.mice == nil):
		return sketch.MergeIncompatible(s, o, "mice filter enabled on one side only")
	case (s.emerg == nil) != (o.emerg == nil):
		return sketch.MergeIncompatible(s, o, "emergency layer enabled on one side only")
	case s.emerg != nil && s.emerg.Counters() != o.emerg.Counters():
		// Checked here, before Merge touches any receiver state: the
		// emergency layers are merged last, and a failure there would leave
		// the filter and buckets already combined — corrupted state without
		// the merged-safe query walk enabled.
		return sketch.MergeIncompatible(s, o,
			fmt.Sprintf("emergency capacity %d vs %d", s.emerg.Counters(), o.emerg.Counters()))
	}
	for i := range s.widths {
		if s.widths[i] != o.widths[i] || s.lambdas[i] != o.lambdas[i] {
			return sketch.MergeIncompatible(s, o,
				fmt.Sprintf("layer %d geometry (%d,λ%d) vs (%d,λ%d)",
					i, s.widths[i], s.lambdas[i], o.widths[i], o.lambdas[i]))
		}
	}
	return nil
}
