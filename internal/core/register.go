package core

import "repro/internal/sketch"

// ReliableSketch's two evaluated variants self-register. They are the only
// entries consuming the Spec's error-targeting options: Lambda, FilterBits,
// and Emergency.
func init() {
	sketch.Register("Ours",
		sketch.CapErrorBounded|sketch.CapHeavyHitter|sketch.CapResettable|sketch.CapLambdaTargeting|sketch.CapMergeable|sketch.CapSnapshottable|sketch.CapBatchQuery,
		func(sp sketch.Spec) sketch.Sketch {
			return MustNew(Config{
				Lambda:      sp.Lambda,
				MemoryBytes: sp.MemoryBytes,
				Seed:        sp.Seed,
				FilterBits:  sp.FilterBits,
				Emergency:   sp.Emergency,
				Rw:          sp.Rw,
				Rl:          sp.Rl,
			})
		})
	sketch.Register("Ours(Raw)",
		sketch.CapErrorBounded|sketch.CapHeavyHitter|sketch.CapResettable|sketch.CapLambdaTargeting|sketch.CapMergeable|sketch.CapSnapshottable|sketch.CapBatchQuery,
		func(sp sketch.Spec) sketch.Sketch {
			return MustNew(Config{
				Lambda:            sp.Lambda,
				MemoryBytes:       sp.MemoryBytes,
				Seed:              sp.Seed,
				Emergency:         sp.Emergency,
				Rw:                sp.Rw,
				Rl:                sp.Rl,
				DisableMiceFilter: true,
			})
		})
}
