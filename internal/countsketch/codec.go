package countsketch

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"

	"repro/internal/sketch"
)

// Snapshot serialization, implementing sketch.Snapshotter: magic "CTS1" |
// d | width | signed counters as zig-zag varints (Count counters go
// negative, unlike CM/CU's). Hash and sign families derive from the Spec
// seed the restoring side builds with.

var ctMagic = [4]byte{'C', 'T', 'S', '1'}

// Snapshot writes the sketch's full state to w.
func (s *Sketch) Snapshot(w io.Writer) error {
	bw := bufio.NewWriter(w)
	bw.Write(ctMagic[:])
	var buf [binary.MaxVarintLen64]byte
	writeU := func(v uint64) {
		n := binary.PutUvarint(buf[:], v)
		bw.Write(buf[:n])
	}
	writeU(uint64(s.depth))
	writeU(uint64(s.width))
	// data is row-major, so iterating it flat emits the exact byte stream
	// the per-row layout produced.
	for _, c := range s.data {
		n := binary.PutVarint(buf[:], c)
		bw.Write(buf[:n])
	}
	return bw.Flush()
}

// Restore replaces the counters with a snapshot written by a same-Spec
// sibling's Snapshot. The serialized geometry must match the receiver's.
func (s *Sketch) Restore(r io.Reader) error {
	br := bufio.NewReader(r)
	var magic [4]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return fmt.Errorf("countsketch: reading snapshot magic: %w", err)
	}
	if magic != ctMagic {
		return fmt.Errorf("%w: bad countsketch snapshot magic %q", sketch.ErrSnapshotMismatch, magic[:])
	}
	d, err := binary.ReadUvarint(br)
	if err != nil {
		return fmt.Errorf("countsketch: snapshot depth: %w", err)
	}
	w, err := binary.ReadUvarint(br)
	if err != nil {
		return fmt.Errorf("countsketch: snapshot width: %w", err)
	}
	if int(d) != s.depth || int(w) != s.width {
		return fmt.Errorf("%w: countsketch snapshot geometry %dx%d, sketch built %dx%d", sketch.ErrSnapshotMismatch,
			d, w, s.depth, s.width)
	}
	// Decode into a fresh counter slice and swap only on full success, so a
	// truncated or corrupt snapshot leaves the receiver untouched.
	data := make([]int64, s.depth*s.width)
	for i := range data {
		c, err := binary.ReadVarint(br)
		if err != nil {
			return fmt.Errorf("countsketch: counter %d/%d: %w", i/s.width, i%s.width, err)
		}
		data[i] = c
	}
	s.data = data
	return nil
}
