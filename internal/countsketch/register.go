package countsketch

import "repro/internal/sketch"

// Registered as "Count", the label the paper's Table 1 taxonomy uses for
// the Count sketch's L2 family.
func init() {
	sketch.Register("Count",
		sketch.CapResettable|sketch.CapMergeable|sketch.CapSnapshottable|sketch.CapBatchQuery,
		func(sp sketch.Spec) sketch.Sketch {
			return NewBytes(sp.MemoryBytes, sp.Seed)
		})
}
