// Package countsketch implements the Count sketch (Charikar, Chen,
// Farach-Colton, ICALP 2002), the canonical L2-norm counter-based sketch
// from the paper's taxonomy (Table 1). Each update is signed by an
// independent ±1 hash and queries take the median across rows, giving an
// unbiased estimator with error proportional to the stream's L2 norm.
//
// The paper's evaluation focuses on L1 competitors; Count is included for
// the Table 1 comparison and as a substrate other systems (UnivMon, Nitro)
// build on.
package countsketch

import (
	"repro/internal/hash"
	"repro/internal/sketch"
	"repro/internal/stream"
)

// CounterBytes is the accounted size of one signed 32-bit counter.
const CounterBytes = 4

// maxStackRows bounds the per-call index/sign/median scratch kept on the
// stack; the registry's 3-row variant fits with room to spare, deeper
// sketches fall back to per-call allocations.
const maxStackRows = 16

// Sketch is a Count sketch with d rows of w signed counters.
//
// The counters live in one contiguous row-major slice (row i is
// data[i*width:(i+1)*width]), so a d-row touch is d offsets into a single
// allocation instead of d slice-header dereferences.
//
// Insert is single-writer (it reuses per-sketch index/sign scratch); Query
// is safe for concurrent readers (it keeps all scratch on the stack), so
// sealed epoch windows can be queried lock-free. The zero value is not
// usable; build with New.
type Sketch struct {
	data   []int64
	width  int
	depth  int
	hashes *hash.Family
	signs  *hash.Family
	name   string
	// idx and sgn are the per-insert row-index and sign scratch filled by
	// the multi-row hash passes; single-writer, like Insert itself.
	idx []int
	sgn []int64
}

// New builds a Count sketch with d rows (odd d recommended for a clean
// median) of width counters.
func New(d, width int, seed uint64) *Sketch {
	if d < 1 || width < 1 {
		panic("countsketch: invalid geometry")
	}
	return &Sketch{
		data:   make([]int64, d*width),
		width:  width,
		depth:  d,
		hashes: hash.NewFamily(seed, d),
		signs:  hash.NewFamily(seed^0x51674e, d),
		name:   "Count",
		idx:    make([]int, d),
		sgn:    make([]int64, d),
	}
}

// NewBytes builds a 3-row Count sketch sized to memBytes.
func NewBytes(memBytes int, seed uint64) *Sketch {
	w := memBytes / (3 * CounterBytes)
	if w < 1 {
		w = 1
	}
	return New(3, w, seed)
}

// Insert adds sign(key)·value to each mapped counter. Row indexes and
// signs each come from one multi-row hash pass (the key-side mix is shared
// across rows), then land as d offsets into the contiguous counter slice.
func (s *Sketch) Insert(key, value uint64) {
	s.hashes.Buckets(s.idx, key, s.width)
	s.signs.Signs(s.sgn, key)
	base := 0
	for i, j := range s.idx {
		s.data[base+j] += s.sgn[i] * int64(value)
		base += s.width
	}
}

// medianOf insertion-sorts scratch in place (d is a handful of rows) and
// returns the median clamped at zero (value sums are non-negative).
func medianOf(scratch []int64) uint64 {
	for i := 1; i < len(scratch); i++ {
		for j := i; j > 0 && scratch[j] < scratch[j-1]; j-- {
			scratch[j], scratch[j-1] = scratch[j-1], scratch[j]
		}
	}
	var med int64
	d := len(scratch)
	if d%2 == 1 {
		med = scratch[d/2]
	} else {
		med = (scratch[d/2-1] + scratch[d/2]) / 2
	}
	if med < 0 {
		return 0
	}
	return uint64(med)
}

// Query returns the median of the signed mapped counters, clamped at zero
// (value sums are non-negative). Safe for concurrent readers: the index,
// sign, and median scratch are per-call stack arrays (at d ≤ 16), so
// queries share no state and allocate nothing.
func (s *Sketch) Query(key uint64) uint64 {
	var ibuf [maxStackRows]int
	var sbuf, mbuf [maxStackRows]int64
	idx, sgn, med := ibuf[:], sbuf[:], mbuf[:]
	if s.depth > maxStackRows {
		idx = make([]int, s.depth)
		sgn = make([]int64, s.depth)
		med = make([]int64, s.depth)
	}
	idx, sgn, med = idx[:s.depth], sgn[:s.depth], med[:s.depth]
	s.hashes.Buckets(idx, key, s.width)
	s.signs.Signs(sgn, key)
	base := 0
	for i, j := range idx {
		med[i] = sgn[i] * s.data[base+j]
		base += s.width
	}
	return medianOf(med)
}

// QueryBatch is the native batch read path (sketch.BatchQuerier): runs of
// equal keys reuse the previous median without re-hashing or re-sorting,
// and each distinct key pays one multi-row index pass and one sign pass
// over stack scratch shared across the batch. Count cannot certify per-key
// errors, so a non-nil mpe is zero-filled. Answers are identical to
// per-key Query; safe for concurrent readers (the scratch is per-call).
func (s *Sketch) QueryBatch(keys []uint64, est, mpe []uint64) {
	var ibuf [maxStackRows]int
	var sbuf, mbuf [maxStackRows]int64
	idx, sgn, med := ibuf[:], sbuf[:], mbuf[:]
	if s.depth > maxStackRows {
		idx = make([]int, s.depth)
		sgn = make([]int64, s.depth)
		med = make([]int64, s.depth)
	}
	idx, sgn, med = idx[:s.depth], sgn[:s.depth], med[:s.depth]
	var prevKey, prevEst uint64
	havePrev := false
	for i, k := range keys {
		if mpe != nil {
			mpe[i] = 0
		}
		if havePrev && k == prevKey {
			est[i] = prevEst
			continue
		}
		s.hashes.Buckets(idx, k, s.width)
		s.signs.Signs(sgn, k)
		base := 0
		for r, j := range idx {
			med[r] = sgn[r] * s.data[base+j]
			base += s.width
		}
		e := medianOf(med)
		est[i] = e
		prevKey, prevEst, havePrev = k, e, true
	}
}

// InsertBatch is the native bulk-ingestion path: runs of equal keys reuse
// the previous item's row positions and signs without re-hashing (signed
// addition is commutative, so per-run accumulation would also be sound —
// but position reuse alone already matches CU's amortization and keeps the
// per-item flow trivially identical to Insert). Counter state is
// bit-identical to item-at-a-time insertion. Single-writer, like Insert.
func (s *Sketch) InsertBatch(items []stream.Item) {
	var prevKey uint64
	havePrev := false
	for _, it := range items {
		if !havePrev || it.Key != prevKey {
			s.hashes.Buckets(s.idx, it.Key, s.width)
			s.signs.Signs(s.sgn, it.Key)
			base := 0
			for i, j := range s.idx {
				s.idx[i] = base + j
				base += s.width
			}
			prevKey, havePrev = it.Key, true
		}
		for i, p := range s.idx {
			s.data[p] += s.sgn[i] * int64(it.Value)
		}
	}
}

// Merge adds another same-geometry Count sketch counter-by-counter. Count
// is a linear sketch: the merged state is bit-identical to one sketch fed
// the concatenated stream, so every query is an exact equivalent.
func (s *Sketch) Merge(other sketch.Sketch) error {
	o, ok := other.(*Sketch)
	if !ok {
		return sketch.MergeIncompatible(s, other, "not a Count sketch")
	}
	if s.depth != o.depth || s.width != o.width {
		return sketch.MergeIncompatible(s, other, "geometry differs")
	}
	if !s.hashes.Equal(o.hashes) || !s.signs.Equal(o.signs) {
		return sketch.MergeIncompatible(s, other, "hash seeds differ")
	}
	for i, c := range o.data {
		s.data[i] += c
	}
	return nil
}

// Depth returns the number of rows d.
func (s *Sketch) Depth() int { return s.depth }

// MemoryBytes reports d × w × 4 bytes (the deployment uses 32-bit signed
// counters).
func (s *Sketch) MemoryBytes() int { return s.depth * s.width * CounterBytes }

// Name identifies the algorithm.
func (s *Sketch) Name() string { return s.name }

// Reset zeroes all counters.
func (s *Sketch) Reset() {
	clear(s.data)
}
