// Package countsketch implements the Count sketch (Charikar, Chen,
// Farach-Colton, ICALP 2002), the canonical L2-norm counter-based sketch
// from the paper's taxonomy (Table 1). Each update is signed by an
// independent ±1 hash and queries take the median across rows, giving an
// unbiased estimator with error proportional to the stream's L2 norm.
//
// The paper's evaluation focuses on L1 competitors; Count is included for
// the Table 1 comparison and as a substrate other systems (UnivMon, Nitro)
// build on.
package countsketch

import (
	"repro/internal/hash"
	"repro/internal/sketch"
)

// CounterBytes is the accounted size of one signed 32-bit counter.
const CounterBytes = 4

// Sketch is a Count sketch with d rows of w signed counters.
//
// Insert is single-writer; Query is safe for concurrent readers (it keeps
// its median scratch on the stack), so sealed epoch windows can be queried
// lock-free.
type Sketch struct {
	rows   [][]int64
	width  int
	hashes *hash.Family
	signs  *hash.Family
	name   string
}

// New builds a Count sketch with d rows (odd d recommended for a clean
// median) of width counters.
func New(d, width int, seed uint64) *Sketch {
	if d < 1 || width < 1 {
		panic("countsketch: invalid geometry")
	}
	s := &Sketch{
		rows:   make([][]int64, d),
		width:  width,
		hashes: hash.NewFamily(seed, d),
		signs:  hash.NewFamily(seed^0x51674e, d),
		name:   "Count",
	}
	for i := range s.rows {
		s.rows[i] = make([]int64, width)
	}
	return s
}

// NewBytes builds a 3-row Count sketch sized to memBytes.
func NewBytes(memBytes int, seed uint64) *Sketch {
	w := memBytes / (3 * CounterBytes)
	if w < 1 {
		w = 1
	}
	return New(3, w, seed)
}

// Insert adds sign(key)·value to each mapped counter.
func (s *Sketch) Insert(key, value uint64) {
	for i := range s.rows {
		j := s.hashes.Bucket(i, key, s.width)
		s.rows[i][j] += s.signs.Sign(i, key) * int64(value)
	}
}

// Query returns the median of the signed mapped counters, clamped at zero
// (value sums are non-negative). Safe for concurrent readers: the median
// scratch is a per-call stack array (insertion-sorted — d is a handful of
// rows), so queries share no state and allocate nothing.
func (s *Sketch) Query(key uint64) uint64 {
	var buf [16]int64
	scratch := buf[:0]
	if len(s.rows) > len(buf) {
		scratch = make([]int64, 0, len(s.rows))
	}
	for i := range s.rows {
		j := s.hashes.Bucket(i, key, s.width)
		scratch = append(scratch, s.signs.Sign(i, key)*s.rows[i][j])
	}
	for i := 1; i < len(scratch); i++ {
		for j := i; j > 0 && scratch[j] < scratch[j-1]; j-- {
			scratch[j], scratch[j-1] = scratch[j-1], scratch[j]
		}
	}
	var med int64
	d := len(scratch)
	if d%2 == 1 {
		med = scratch[d/2]
	} else {
		med = (scratch[d/2-1] + scratch[d/2]) / 2
	}
	if med < 0 {
		return 0
	}
	return uint64(med)
}

// QueryBatch is the native batch read path (sketch.BatchQuerier): runs of
// equal keys reuse the previous median without re-hashing or re-sorting,
// and the median scratch is allocated once per batch for deep sketches
// instead of once per key. Count cannot certify per-key errors, so a
// non-nil mpe is zero-filled. Answers are identical to per-key Query; safe
// for concurrent readers (the scratch is per-call).
func (s *Sketch) QueryBatch(keys []uint64, est, mpe []uint64) {
	var buf [16]int64
	scratch := buf[:0]
	if len(s.rows) > len(buf) {
		scratch = make([]int64, 0, len(s.rows))
	}
	var prevKey, prevEst uint64
	havePrev := false
	for i, k := range keys {
		if mpe != nil {
			mpe[i] = 0
		}
		if havePrev && k == prevKey {
			est[i] = prevEst
			continue
		}
		scratch = scratch[:0]
		for r := range s.rows {
			j := s.hashes.Bucket(r, k, s.width)
			scratch = append(scratch, s.signs.Sign(r, k)*s.rows[r][j])
		}
		for a := 1; a < len(scratch); a++ {
			for b := a; b > 0 && scratch[b] < scratch[b-1]; b-- {
				scratch[b], scratch[b-1] = scratch[b-1], scratch[b]
			}
		}
		var med int64
		d := len(scratch)
		if d%2 == 1 {
			med = scratch[d/2]
		} else {
			med = (scratch[d/2-1] + scratch[d/2]) / 2
		}
		var e uint64
		if med > 0 {
			e = uint64(med)
		}
		est[i] = e
		prevKey, prevEst, havePrev = k, e, true
	}
}

// Merge adds another same-geometry Count sketch counter-by-counter. Count
// is a linear sketch: the merged state is bit-identical to one sketch fed
// the concatenated stream, so every query is an exact equivalent.
func (s *Sketch) Merge(other sketch.Sketch) error {
	o, ok := other.(*Sketch)
	if !ok {
		return sketch.MergeIncompatible(s, other, "not a Count sketch")
	}
	if len(s.rows) != len(o.rows) || s.width != o.width {
		return sketch.MergeIncompatible(s, other, "geometry differs")
	}
	if !s.hashes.Equal(o.hashes) || !s.signs.Equal(o.signs) {
		return sketch.MergeIncompatible(s, other, "hash seeds differ")
	}
	for i := range s.rows {
		dst, src := s.rows[i], o.rows[i]
		for j := range dst {
			dst[j] += src[j]
		}
	}
	return nil
}

// MemoryBytes reports d × w × 4 bytes (the deployment uses 32-bit signed
// counters).
func (s *Sketch) MemoryBytes() int { return len(s.rows) * s.width * CounterBytes }

// Name identifies the algorithm.
func (s *Sketch) Name() string { return s.name }

// Reset zeroes all counters.
func (s *Sketch) Reset() {
	for i := range s.rows {
		clear(s.rows[i])
	}
}
