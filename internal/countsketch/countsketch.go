// Package countsketch implements the Count sketch (Charikar, Chen,
// Farach-Colton, ICALP 2002), the canonical L2-norm counter-based sketch
// from the paper's taxonomy (Table 1). Each update is signed by an
// independent ±1 hash and queries take the median across rows, giving an
// unbiased estimator with error proportional to the stream's L2 norm.
//
// The paper's evaluation focuses on L1 competitors; Count is included for
// the Table 1 comparison and as a substrate other systems (UnivMon, Nitro)
// build on.
package countsketch

import (
	"sort"

	"repro/internal/hash"
)

// CounterBytes is the accounted size of one signed 32-bit counter.
const CounterBytes = 4

// Sketch is a Count sketch with d rows of w signed counters.
type Sketch struct {
	rows    [][]int64
	width   int
	hashes  *hash.Family
	signs   *hash.Family
	name    string
	scratch []int64
}

// New builds a Count sketch with d rows (odd d recommended for a clean
// median) of width counters.
func New(d, width int, seed uint64) *Sketch {
	if d < 1 || width < 1 {
		panic("countsketch: invalid geometry")
	}
	s := &Sketch{
		rows:    make([][]int64, d),
		width:   width,
		hashes:  hash.NewFamily(seed, d),
		signs:   hash.NewFamily(seed^0x51674e, d),
		name:    "Count",
		scratch: make([]int64, d),
	}
	for i := range s.rows {
		s.rows[i] = make([]int64, width)
	}
	return s
}

// NewBytes builds a 3-row Count sketch sized to memBytes.
func NewBytes(memBytes int, seed uint64) *Sketch {
	w := memBytes / (3 * CounterBytes)
	if w < 1 {
		w = 1
	}
	return New(3, w, seed)
}

// Insert adds sign(key)·value to each mapped counter.
func (s *Sketch) Insert(key, value uint64) {
	for i := range s.rows {
		j := s.hashes.Bucket(i, key, s.width)
		s.rows[i][j] += s.signs.Sign(i, key) * int64(value)
	}
}

// Query returns the median of the signed mapped counters, clamped at zero
// (value sums are non-negative).
func (s *Sketch) Query(key uint64) uint64 {
	for i := range s.rows {
		j := s.hashes.Bucket(i, key, s.width)
		s.scratch[i] = s.signs.Sign(i, key) * s.rows[i][j]
	}
	sort.Slice(s.scratch, func(a, b int) bool { return s.scratch[a] < s.scratch[b] })
	var med int64
	d := len(s.scratch)
	if d%2 == 1 {
		med = s.scratch[d/2]
	} else {
		med = (s.scratch[d/2-1] + s.scratch[d/2]) / 2
	}
	if med < 0 {
		return 0
	}
	return uint64(med)
}

// MemoryBytes reports d × w × 4 bytes (the deployment uses 32-bit signed
// counters).
func (s *Sketch) MemoryBytes() int { return len(s.rows) * s.width * CounterBytes }

// Name identifies the algorithm.
func (s *Sketch) Name() string { return s.name }

// Reset zeroes all counters.
func (s *Sketch) Reset() {
	for i := range s.rows {
		clear(s.rows[i])
	}
}
