package countsketch

import (
	"math"
	"testing"

	"repro/internal/sketch"
	"repro/internal/stream"
)

var _ sketch.Sketch = (*Sketch)(nil)

func TestExactWithoutCollisions(t *testing.T) {
	s := New(3, 1<<16, 1)
	s.Insert(1, 100)
	s.Insert(2, 50)
	if got := s.Query(1); got != 100 {
		t.Errorf("Query(1)=%d want 100", got)
	}
	if got := s.Query(2); got != 50 {
		t.Errorf("Query(2)=%d want 50", got)
	}
	if got := s.Query(3); got != 0 {
		t.Errorf("Query(unseen)=%d want 0", got)
	}
}

// TestApproximatelyUnbiased: averaged over many keys, the signed-median
// estimator's error should center near zero (small |mean error| relative to
// the L2 noise level).
func TestApproximatelyUnbiased(t *testing.T) {
	s := stream.Zipf(100_000, 10_000, 1.0, 2)
	sk := NewBytes(128<<10, 2)
	for _, it := range s.Items {
		sk.Insert(it.Key, it.Value)
	}
	var sumSigned float64
	n := 0
	for k, f := range s.Truth() {
		est := float64(sk.Query(k))
		sumSigned += est - float64(f)
		n++
	}
	meanErr := sumSigned / float64(n)
	// The zero-clamp in Query introduces a small positive bias; allow a
	// modest band rather than exact zero.
	if math.Abs(meanErr) > 5 {
		t.Errorf("mean signed error %.2f; Count sketch should be near-unbiased", meanErr)
	}
}

func TestMedianRobustToOneBadRow(t *testing.T) {
	// Pollute one row heavily: the 3-row median should shrug it off for a
	// clean key.
	sk := New(3, 8, 7)
	sk.Insert(42, 10)
	// Flood colliding keys; with width 8 some will share row cells, but the
	// median across 3 rows keeps the estimate within the noise of ~2 rows.
	for k := uint64(100); k < 108; k++ {
		sk.Insert(k, 1)
	}
	got := sk.Query(42)
	if got < 5 || got > 25 {
		t.Errorf("Query(42)=%d; median should stay near 10", got)
	}
}

func TestZeroClamp(t *testing.T) {
	// A key never inserted amid heavy negative interference must not report
	// a huge value, and never a negative one (unsigned return).
	sk := New(3, 4, 3)
	for k := uint64(0); k < 100; k++ {
		sk.Insert(k, 3)
	}
	_ = sk.Query(9999) // must not panic; clamped at ≥ 0 by construction
}

func TestMemoryAndReset(t *testing.T) {
	sk := NewBytes(12000, 1)
	if sk.MemoryBytes() > 12000 {
		t.Errorf("memory %d over budget", sk.MemoryBytes())
	}
	sk.Insert(1, 5)
	sk.Reset()
	if sk.Query(1) != 0 {
		t.Error("Reset did not clear")
	}
	if sk.Name() != "Count" {
		t.Errorf("Name=%q", sk.Name())
	}
}

func BenchmarkInsert(b *testing.B) {
	sk := NewBytes(1<<20, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sk.Insert(uint64(i&0xffff), 1)
	}
}
