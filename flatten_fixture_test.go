package repro

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/fixtures"
	"repro/internal/sketch"
)

// TestFlattenedSnapshotFixtures certifies that the counter-sketch layouts
// are observably invisible: a sketch built and fed today must produce the
// byte-identical Snapshot stream captured in testdata/flatten/ before the
// flattened layouts landed (PR 7). Byte equality pins the counters, the
// geometry, and (for CM) the serialized hash-call accounting — so RSK3 and
// checkpoint compatibility is certified, not assumed. Regenerate fixtures
// only for an intentional wire-format change: go run ./internal/tools/snapfixtures.
func TestFlattenedSnapshotFixtures(t *testing.T) {
	for _, c := range fixtures.Cases() {
		t.Run(c.Name, func(t *testing.T) {
			golden, err := os.ReadFile(filepath.Join("testdata", "flatten", c.Name+".snap"))
			if err != nil {
				t.Fatalf("reading fixture: %v", err)
			}
			sk := fixtures.BuildAndFeed(c)
			var buf bytes.Buffer
			if err := sk.Snapshot(&buf); err != nil {
				t.Fatalf("Snapshot: %v", err)
			}
			if !bytes.Equal(buf.Bytes(), golden) {
				t.Fatalf("snapshot differs from pre-flattening fixture: got %d bytes, want %d — the wire format or counter state changed",
					buf.Len(), len(golden))
			}

			// Restore the golden bytes into a fresh same-Spec sketch and
			// require identical answers to the freshly fed one for every key
			// in the fixture's key space (plus unseen keys), through both the
			// point and batch read paths.
			restored := sketch.MustBuild(c.Algo, c.Spec).(sketch.Snapshotter)
			if err := restored.Restore(bytes.NewReader(golden)); err != nil {
				t.Fatalf("Restore: %v", err)
			}
			keys := make([]uint64, 0, 520)
			for k := uint64(0); k < 520; k++ {
				keys = append(keys, k)
			}
			est := make([]uint64, len(keys))
			ref := make([]uint64, len(keys))
			sketch.QueryBatch(restored.(sketch.Sketch), keys, est, nil)
			sketch.QueryBatch(sk.(sketch.Sketch), keys, ref, nil)
			for i, k := range keys {
				if est[i] != ref[i] {
					t.Fatalf("key %d: restored QueryBatch=%d, fresh=%d", k, est[i], ref[i])
				}
				if got := restored.(sketch.Sketch).Query(k); got != ref[i] {
					t.Fatalf("key %d: restored Query=%d, fresh=%d", k, got, ref[i])
				}
			}
		})
	}
}
