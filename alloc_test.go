package repro

import (
	"testing"

	"repro/internal/sketch"
	"repro/internal/stream"
)

// TestHotPathsAllocFree pins the allocation contract of the flattened hot
// paths: once a sketch is built (and its lazy batch scratch warmed), steady
// state Insert, Query, InsertBatch, and QueryBatch perform zero heap
// allocations per operation. This is what the flat counter layouts, the
// stack bucket scratch, and the pooled shard partitioning buy — a
// regression here reintroduces GC pressure on the per-packet path even if
// ns/op still looks fine on a quiet machine.
//
// testing.AllocsPerRun averages over the runs with integer division, so a
// rare one-off allocation (a sync.Pool refill after a GC emptied it) does
// not flake the test. AllocsPerRun counts process-wide mallocs, so
// goroutines left over from other tests in the binary can inflate a
// measurement under load; interference only ever adds, so each path is
// measured a few times and judged on its best attempt — a real
// per-operation allocation shows up in every attempt.
func TestHotPathsAllocFree(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not meaningful under the race detector")
	}
	cases := []struct {
		name string
		spec sketch.Spec
	}{
		{"Ours", sketch.Spec{MemoryBytes: 1 << 18, Lambda: 25, Seed: 1}},
		{"Ours_sharded4", sketch.Spec{MemoryBytes: 1 << 18, Lambda: 25, Seed: 1, Shards: 4}},
		{"CM_fast", sketch.Spec{MemoryBytes: 1 << 18, Seed: 1}},
		{"CM_acc", sketch.Spec{MemoryBytes: 1 << 18, Seed: 1}},
		{"CU_fast", sketch.Spec{MemoryBytes: 1 << 18, Seed: 1}},
		{"CU_acc", sketch.Spec{MemoryBytes: 1 << 18, Seed: 1}},
		{"Count", sketch.Spec{MemoryBytes: 1 << 18, Seed: 1}},
	}
	s := stream.Zipf(4096, 512, 1.0, 7)
	items := s.Items
	keys := make([]uint64, 256)
	for i := range keys {
		keys[i] = items[i].Key
	}
	est := make([]uint64, len(keys))
	mpe := make([]uint64, len(keys))

	for _, tc := range cases {
		algo := tc.name
		if tc.spec.Shards > 1 {
			algo = algo[:len(algo)-len("_sharded4")]
		}
		sk := sketch.MustBuild(algo, tc.spec)

		// Warm up every path once: feeds the counters, grows cm's lazy
		// aggregation cache, and populates the sharded partition pool.
		for _, it := range items[:512] {
			sk.Insert(it.Key, it.Value)
		}
		sketch.InsertBatch(sk, items)
		sketch.QueryBatch(sk, keys, est, mpe)
		sk.Query(keys[0])

		check := func(op string, runs int, f func()) {
			best := testing.AllocsPerRun(runs, f)
			for attempt := 0; best != 0 && attempt < 4; attempt++ {
				if v := testing.AllocsPerRun(runs, f); v < best {
					best = v
				}
			}
			if best != 0 {
				t.Errorf("%s: %s allocates %.0f times per op, want 0", tc.name, op, best)
			}
		}
		i := 0
		check("Insert", 100, func() {
			it := items[i%len(items)]
			sk.Insert(it.Key, it.Value)
			i++
		})
		check("Query", 100, func() {
			sk.Query(keys[i%len(keys)])
			i++
		})
		check("InsertBatch", 20, func() {
			sketch.InsertBatch(sk, items)
		})
		check("QueryBatch", 20, func() {
			sketch.QueryBatch(sk, keys, est, mpe)
		})
		if eb, ok := sk.(sketch.ErrorBounded); ok {
			check("QueryWithError", 100, func() {
				eb.QueryWithError(keys[i%len(keys)])
				i++
			})
		}
	}
}

// TestBatchFallbackAllocFree pins the fallback paths of the unified batch
// entry points: a sketch without native batch methods must still ingest and
// answer batches without per-item allocations (the method values are bound
// once per batch, outside the loop).
func TestBatchFallbackAllocFree(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not meaningful under the race detector")
	}
	sk := sketch.MustBuild("SS", sketch.Spec{MemoryBytes: 1 << 16, Seed: 1})
	if _, ok := sk.(sketch.BatchInserter); ok {
		t.Fatal("SS_fallback unexpectedly implements BatchInserter; pick another fallback sketch")
	}
	s := stream.Zipf(2048, 256, 1.0, 7)
	keys := make([]uint64, 128)
	for i := range keys {
		keys[i] = s.Items[i].Key
	}
	est := make([]uint64, len(keys))
	sketch.InsertBatch(sk, s.Items)
	sketch.QueryBatch(sk, keys, est, nil)

	// Best-of attempts for the same reason as TestHotPathsAllocFree:
	// process-wide interference only ever adds.
	check := func(op string, f func()) {
		best := testing.AllocsPerRun(20, f)
		for attempt := 0; best != 0 && attempt < 4; attempt++ {
			if v := testing.AllocsPerRun(20, f); v < best {
				best = v
			}
		}
		if best != 0 {
			t.Errorf("fallback %s allocates %.0f times per batch, want 0", op, best)
		}
	}
	check("InsertBatch", func() {
		sketch.InsertBatch(sk, s.Items)
	})
	check("QueryBatch", func() {
		sketch.QueryBatch(sk, keys, est, nil)
	})
}
