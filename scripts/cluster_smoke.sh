#!/usr/bin/env bash
# End-to-end cluster smoke, proven through the real binaries and HTTP:
#
# Part 1 (bit-compatibility): the same zipf workload flows into a single
# CM_acc node and into a 3-replica cluster through the router; after one
# replication sweep, a 256-key /v2/query batch must come back IDENTICAL
# from both — CM merges are linear, so scatter-gather over merged views is
# not allowed to change a single bit of any estimate.
#
# Part 2 (coverage honesty): acked writes flow through the router into an
# "Ours" cluster; after replication the routed answer is certified with
# full key coverage and every certified interval contains the acked truth.
# Then one replica is SIGKILLed. The router must keep answering HTTP 200 —
# but with key_coverage < 1 and certified:false, and without ever
# underestimating an acked count (survivor merged views still hold the
# dead replica's delta). A router that certified, errored, or silently
# returned full coverage here would be lying about a degraded cluster.
#
# Requires: go, curl, python3 (JSON assertions). Run from anywhere.
set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
cd "$ROOT"

WORK="$(mktemp -d)"
PIDS=()
cleanup() {
  for pid in "${PIDS[@]:-}"; do
    kill -9 "$pid" 2>/dev/null || true
  done
  rm -rf "$WORK"
}
trap cleanup EXIT

PORT0="${RSSERVE_SMOKE_PORT:-18180}"
addr() { echo "127.0.0.1:$((PORT0 + $1))"; }

echo "== build rsserve + rsgen"
go build -o "$WORK/rsserve" ./cmd/rsserve
go build -o "$WORK/rsgen" ./cmd/rsgen

# start_node LOGNAME ARGS... — boot one rsserve, record its PID, wait for
# /v1/status. The listen address must be in ARGS.
start_node() {
  local log=$1 base=""
  shift
  for a in "$@"; do
    case "$prev_arg" in -listen) base="http://$a" ;; esac
    prev_arg="$a"
  done
  "$WORK/rsserve" "$@" >>"$WORK/$log.log" 2>&1 &
  PIDS+=($!)
  disown $! # SIGKILL is part of the test; keep bash from reporting it
  for _ in $(seq 1 50); do
    if curl -fsS "$base/v1/status" >/dev/null 2>&1; then
      return 0
    fi
    sleep 0.2
  done
  echo "rsserve ($log) did not come up; log follows" >&2
  cat "$WORK/$log.log" >&2
  exit 1
}
prev_arg=""

# replicate BASE — trigger one pull sweep on a replica and print how many
# peers yielded a new delta.
replicate() {
  curl -fsS -X POST "$1/v2/replicate" | python3 -c 'import json,sys
print(json.load(sys.stdin)["peers_pulled"])'
}

###############################################################################
echo
echo "=== part 1: 3-replica CM_acc cluster is bit-compatible with a single node"
###############################################################################

R1="$(addr 1)" R2="$(addr 2)" R3="$(addr 3)"
PEERS="http://$R1,http://$R2,http://$R3"
SINGLE="http://$(addr 0)"
ROUTER="http://$(addr 4)"
CM_FLAGS=(-algo CM_acc -mem $((64 << 10)) -seed 7 -ingest-workers 0 -cache-ttl 1ms)

start_node single -listen "$(addr 0)" "${CM_FLAGS[@]}"
for r in "$R1" "$R2" "$R3"; do
  start_node "replica-${r##*:}" -listen "$r" -peers "$PEERS" -self "http://$r" "${CM_FLAGS[@]}"
done
start_node router -listen "$(addr 4)" -cluster-router -peers "$PEERS" -algo CM_acc -cache-ttl 1ms

echo "== same zipf workload into the single node and through the router"
for target in "$SINGLE" "$ROUTER"; do
  "$WORK/rsgen" -dist zipf -skew 1.2 -distinct 800 -items 30000 -seed 7 \
    -ingest "$target" -batch 2000 | tee "$WORK/rsgen.out" | tail -1
  grep -q "(30000 accepted, 0 dropped)" "$WORK/rsgen.out" ||
    { echo "routed ingest was not fully acked" >&2; exit 1; }
done

echo "== one replication sweep on every replica (each must pull 2 peers)"
for r in "$R1" "$R2" "$R3"; do
  pulled=$(replicate "http://$r")
  echo "replica $r pulled $pulled"
  [ "$pulled" = "2" ] || { echo "expected 2 peer deltas" >&2; exit 1; }
done

echo "== 256-key batch: routed answer must equal the single node's, bit for bit"
BATCH=$(python3 -c 'import json; print(json.dumps({"kind": "point", "keys": list(range(1, 257))}))')
curl -fsS -X POST --data "$BATCH" "$SINGLE/v2/query" >"$WORK/single.json"
curl -fsS -X POST --data "$BATCH" "$ROUTER/v2/query" >"$WORK/routed.json"
python3 - "$WORK/single.json" "$WORK/routed.json" <<'EOF'
import json, sys
single = json.load(open(sys.argv[1]))
routed = json.load(open(sys.argv[2]))
assert routed["key_coverage"] == 1, f"healthy cluster key_coverage {routed['key_coverage']}"
assert len(single["per_key"]) == len(routed["per_key"]) == 256
for s, r in zip(single["per_key"], routed["per_key"]):
    assert s == r, f"cluster diverged from single node: {s} vs {r}"
print(f"256 keys bit-identical (source={routed['source']}, coverage={routed['key_coverage']})")
EOF

for pid in "${PIDS[@]}"; do kill -9 "$pid" 2>/dev/null || true; wait "$pid" 2>/dev/null || true; done
PIDS=()

###############################################################################
echo
echo "=== part 2: killing a replica degrades coverage, never certifies a lie"
###############################################################################

OURS_FLAGS=(-algo Ours -mem $((1 << 20)) -seed 5 -ingest-workers 0 -cache-ttl 1ms)
start_node replica2-1 -listen "$R1" -peers "$PEERS" -self "http://$R1" "${OURS_FLAGS[@]}"
REPLICA1_PID="${PIDS[-1]}"
start_node replica2-2 -listen "$R2" -peers "$PEERS" -self "http://$R2" "${OURS_FLAGS[@]}"
start_node replica2-3 -listen "$R3" -peers "$PEERS" -self "http://$R3" "${OURS_FLAGS[@]}"
start_node router2 -listen "$(addr 4)" -cluster-router -peers "$PEERS" -algo Ours -cache-ttl 1ms

echo "== acked ingest through the router: key k appears 10*k times, k=1..64"
python3 -c 'import json
items = [{"key": k, "value": 1} for k in range(1, 65) for _ in range(10 * k)]
print(json.dumps({"items": items}))' >"$WORK/ingest.json"
curl -fsS -X POST --data "@$WORK/ingest.json" "$ROUTER/v2/ingest" | python3 -c 'import json,sys
ack = json.load(sys.stdin)
want = sum(10 * k for k in range(1, 65))
assert ack["accepted"] == want and ack["dropped"] == 0, f"ack {ack}, want {want} accepted"
print("acked", ack["accepted"], "items, 0 dropped")'

for r in "$R1" "$R2" "$R3"; do
  echo "replica $r pulled $(replicate "http://$r")"
done

BATCH=$(python3 -c 'import json; print(json.dumps({"kind": "point", "keys": list(range(1, 65))}))')
echo "== healthy cluster: certified, full coverage, intervals contain acked truth"
curl -fsS -X POST --data "$BATCH" "$ROUTER/v2/query" >"$WORK/healthy.json"
python3 - "$WORK/healthy.json" <<'EOF'
import json, sys
r = json.load(open(sys.argv[1]))
assert r["certified"], f"healthy cluster uncertified: {r}"
assert r["key_coverage"] == 1, f"healthy cluster key_coverage {r['key_coverage']}"
for e in r["per_key"]:
    truth = 10 * e["key"]
    assert e["lower"] <= truth <= e["upper"], \
        f"key {e['key']}: certified [{e['lower']}, {e['upper']}] misses acked truth {truth}"
print("64 certified intervals all contain the acked truth")
EOF

echo "== SIGKILL replica $R1 (pid $REPLICA1_PID)"
kill -9 "$REPLICA1_PID"
wait "$REPLICA1_PID" 2>/dev/null || true
sleep 0.3

echo "== degraded cluster: HTTP 200, reduced coverage, uncertified, no underestimates"
curl -fsS -X POST --data "$BATCH" "$ROUTER/v2/query" >"$WORK/degraded.json"
python3 - "$WORK/degraded.json" <<'EOF'
import json, sys
r = json.load(open(sys.argv[1]))
assert not r["certified"], "router CERTIFIED an answer with a replica down"
cov = r.get("key_coverage", 0)
assert 0 < cov < 1, f"key_coverage {cov} with 1 of 3 replicas down, want in (0, 1)"
for e in r["per_key"]:
    truth = 10 * e["key"]
    assert e["est"] >= truth, \
        f"key {e['key']}: degraded estimate {e['est']} under acked truth {truth} — fallback lost acked writes"
print(f"degraded answer honest: certified=false, key_coverage={cov:.4f}, no acked write lost")
EOF

echo "== router /metrics tells the same story (cluster_* family)"
curl -fsS "$ROUTER/metrics" >"$WORK/metrics.txt"
python3 - "$WORK/metrics.txt" <<'EOF'
import sys
series = {}
for line in open(sys.argv[1]):
    line = line.strip()
    if not line or line.startswith("#"):
        continue
    name, _, value = line.rpartition(" ")
    series[name] = float(value)
def total(prefix):
    return sum(v for k, v in series.items() if k.split("{")[0] == prefix)
for required in ("cluster_router_queries_total", "cluster_router_ingested_total",
                 "cluster_ring_replicas", "cluster_ring_vnodes",
                 "cluster_fanout_duration_seconds_count"):
    assert any(k.split("{")[0] == required for k in series), f"/metrics missing {required}"
assert series["cluster_ring_replicas"] == 3, f"cluster_ring_replicas {series['cluster_ring_replicas']}"
assert total("cluster_fanout_duration_seconds_count") > 0, "no fan-outs recorded"
assert total("cluster_replica_errors_total") > 0, "dead replica produced no error counts"
print("metrics:", " ".join(f"{p}={total(p):g}" for p in (
    "cluster_router_queries_total", "cluster_replica_errors_total",
    "cluster_replica_fallbacks_total", "cluster_ring_replicas")))
EOF

echo
echo "cluster smoke: OK"
