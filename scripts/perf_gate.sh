#!/usr/bin/env bash
# perf_gate.sh — the repo's one perf source of truth.
#
# Runs the ingest-plane, WAL, and result-cache benchmark suites and gates
# them against the committed baselines (BENCH_ingest.json, BENCH_wal.json,
# BENCH_cache.json) via internal/tools/benchjson -compare: the build fails
# when any benchmark's ns/op regresses past the threshold, when a hot-path
# benchmark starts allocating more than its baseline (allocations are
# deterministic — any growth is a code change, not noise), or when a cache
# policy's zipf hit rate drops below its baseline.
#
# Usage:
#   ./scripts/perf_gate.sh            # gate against committed baselines
#   ./scripts/perf_gate.sh --refresh  # re-baseline: overwrite BENCH_*.json
#                                     # with this machine's fresh numbers
#
# Environment:
#   PERF_GATE_THRESHOLD      max ns/op regression %% for the ingest suite
#                            (default 10 — CPU-bound, low variance)
#   PERF_GATE_WAL_THRESHOLD  max ns/op regression %% for the WAL suite
#                            (default 75 — fsync latency on shared storage jitters ~2x;
#                            the gate is for structural regressions like an
#                            accidental per-record fsync, which is +1000%)
#   PERF_GATE_CACHE_THRESHOLD  max ns/op regression %% for the result-cache
#                            suite (default 25 — lock-contention benchmarks
#                            jitter more than single-threaded ones; the zipf
#                            hit-rate metric is gated separately and allows
#                            no drop beyond rounding)
#
# Fresh JSON documents are always left next to the baselines as
# BENCH_ingest.fresh.json / BENCH_wal.fresh.json, so CI can upload them as
# artifacts and a maintainer can inspect or promote them after a red gate.
set -euo pipefail
cd "$(dirname "$0")/.."

THRESHOLD="${PERF_GATE_THRESHOLD:-10}"
WAL_THRESHOLD="${PERF_GATE_WAL_THRESHOLD:-75}"
CACHE_THRESHOLD="${PERF_GATE_CACHE_THRESHOLD:-25}"
REFRESH=0
if [ "${1:-}" = "--refresh" ]; then
  REFRESH=1
fi

# Fail fast if the gate tool itself does not compile, without littering
# the repo root with its binary.
go build -o /dev/null ./internal/tools/benchjson

fail=0

gate_suite() {
  local label="$1" baseline="$2" fresh="$3" threshold="$4"
  shift 4
  echo "== $label benchmarks =="
  local txt
  txt=$(mktemp)
  "$@" | tee "$txt"
  if [ "$REFRESH" = 1 ]; then
    go run ./internal/tools/benchjson < "$txt" > "$baseline"
    echo "re-baselined $baseline"
  else
    # The gate still emits the fresh document on stdout; keep it for
    # artifact upload / promotion.
    if ! go run ./internal/tools/benchjson \
        -compare "$baseline" -threshold "$threshold" -allocs \
        < "$txt" > "$fresh"; then
      fail=1
    fi
  fi
  rm -f "$txt"
}

# Ingest plane: per-item ns/op, 0 allocs/op contract on the flattened hot
# paths. Fixed -benchtime so run length (and the stream prefix each sketch
# sees) is identical to the baseline run; -count=3 because benchjson folds
# repeated runs into their best observation, which cancels scheduler and
# frequency noise on both sides of the comparison.
gate_suite "ingest" BENCH_ingest.json BENCH_ingest.fresh.json "$THRESHOLD" \
  go test -run '^$' -bench 'BenchmarkPipelineIngest|BenchmarkInsertBatch' \
    -benchtime=1000000x -benchmem -count=3 .

# Durability plane: fsync-bound, so the threshold is looser and allocs per
# op include real per-batch buffers (gated on growth all the same).
gate_suite "wal" BENCH_wal.json BENCH_wal.fresh.json "$WAL_THRESHOLD" \
  go test -run '^$' -bench 'BenchmarkWAL' \
    -benchtime=1000x -benchmem -count=3 ./internal/wal

# Result cache: two fixed run lengths in one suite. The zipf policy
# benchmarks replay a whole 200k-key trace per op (3 replays each is
# plenty — the hit rate they report is deterministic for the trace and is
# gated with no tolerated drop); the hot-path benchmarks are nanosecond
# scale and need the large fixed count, with the 0 allocs/op contract
# enforced via -allocs.
gate_suite "cache" BENCH_cache.json BENCH_cache.fresh.json "$CACHE_THRESHOLD" \
  bash -c "go test -run '^\$' -bench 'BenchmarkCache(LRU|S3FIFO|TinyLFU)\$' \
      -benchtime=3x -benchmem -count=3 ./internal/rcache && \
    go test -run '^\$' -bench 'BenchmarkCache(Hit|MissEvict)' \
      -benchtime=300000x -benchmem -count=3 ./internal/rcache"

if [ "$fail" -ne 0 ]; then
  echo "perf gate: FAILED (see comparisons above)" >&2
  echo "If the regression is intended, re-baseline with: ./scripts/perf_gate.sh --refresh" >&2
  exit 1
fi
if [ "$REFRESH" = 1 ]; then
  echo "perf gate: baselines refreshed"
else
  echo "perf gate: OK"
fi
