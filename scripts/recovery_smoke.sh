#!/usr/bin/env bash
# End-to-end crash-recovery smoke: ingest acked batches into rsserve with a
# WAL, checkpoint mid-stream, ingest more, SIGKILL the process, restart on
# the same -wal-dir/-checkpoint, and assert every acked count is inside the
# recovered certified interval. Exercises the full durability pipeline —
# checkpoint restore plus WAL tail replay — from outside the process.
#
# Requires: go, curl, python3 (JSON assertions). Run from anywhere.
set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
cd "$ROOT"

WORK="$(mktemp -d)"
PID=""
cleanup() {
  [ -n "$PID" ] && kill -9 "$PID" 2>/dev/null || true
  rm -rf "$WORK"
}
trap cleanup EXIT

ADDR="127.0.0.1:${RSSERVE_SMOKE_PORT:-18080}"
BASE="http://$ADDR"

echo "== build rsserve"
go build -o "$WORK/rsserve" ./cmd/rsserve

start_server() {
  "$WORK/rsserve" -listen "$ADDR" -mem $((1 << 20)) \
    -checkpoint "$WORK/ckpt.bin" \
    -wal-dir "$WORK/wal" -wal-fsync batch \
    >>"$WORK/server.log" 2>&1 &
  PID=$!
  for _ in $(seq 1 50); do
    if curl -fsS "$BASE/v1/status" >/dev/null 2>&1; then
      return 0
    fi
    sleep 0.2
  done
  echo "rsserve did not come up; log follows" >&2
  cat "$WORK/server.log" >&2
  exit 1
}

# ingest KEY COUNT — one acked batch of COUNT increments of KEY. Fails
# unless the server acked every item: the recovery assertion below is only
# meaningful for writes the client was told are durable.
ingest() {
  local key=$1 n=$2 body resp
  body=$(python3 -c 'import json,sys
k, n = int(sys.argv[1]), int(sys.argv[2])
print(json.dumps({"items": [{"key": k, "value": 1}] * n}))' "$key" "$n")
  resp=$(curl -fsS -X POST --data "$body" "$BASE/v1/insert")
  python3 -c 'import json,sys
r = json.loads(sys.argv[1])
n = int(sys.argv[2])
assert r["ingested"] == n and r["dropped"] == 0, f"ack {r} for batch of {n}"' "$resp" "$n"
}

# assert_contains KEY TRUTH — the certified interval [lower, upper] of
# /v1/point must contain TRUTH.
assert_contains() {
  local key=$1 truth=$2 resp
  resp=$(curl -fsS "$BASE/v1/point?key=$key")
  python3 -c 'import json,sys
r = json.loads(sys.argv[1])
truth = int(sys.argv[2])
key, lo, hi = r["key"], r["lower"], r["upper"]
assert r["certified"], f"uncertified answer: {r}"
assert lo <= truth <= hi, f"key {key}: certified [{lo}, {hi}] misses acked truth {truth}"
print(f"key {key}: truth {truth} in certified [{lo}, {hi}]")' "$resp" "$truth"
}

echo "== start with empty WAL"
start_server

echo "== ingest 400x key 101, checkpoint, ingest 300x key 202 + 150x key 101"
ingest 101 400
curl -fsS -X POST "$BASE/v1/checkpoint" >/dev/null
ingest 202 300
ingest 101 150 # tail past the checkpoint cut for a key the snapshot holds

echo "== SIGKILL pid $PID"
kill -9 "$PID"
wait "$PID" 2>/dev/null || true
PID=""

echo "== restart on the same -wal-dir and -checkpoint"
start_server

assert_contains 101 550
assert_contains 202 300

echo "== WAL status after recovery"
curl -fsS "$BASE/v1/status" | python3 -c 'import json,sys
w = json.load(sys.stdin)["backend"].get("wal")
assert w, "no wal section in /v1/status"
assert w["last_lsn"] > 0, f"wal stats: {w}"
print("wal:", " ".join(f"{k}={w[k]}" for k in ("last_lsn", "watermark", "replayed_records", "torn_tail_truncations")))'

echo "== /metrics exposition after recovery"
# The Prometheus plane must tell the same recovery story the JSON status
# does: the restarted process replayed the WAL tail past the checkpoint cut
# (300x key 202 + 150x key 101 = 2 records), and the wal_* families are
# present alongside the queryd_* and ingest_* ones.
curl -fsS "$BASE/metrics" | python3 -c 'import sys
series = {}
for line in sys.stdin:
    line = line.strip()
    if not line or line.startswith("#"):
        continue
    name, _, value = line.rpartition(" ")
    series[name] = value
for required in (
    "wal_replayed_records_total",
    "wal_appended_records_total",
    "wal_segments",
    "queryd_cache_misses_total",
    "ingest_accepted_items_total",
):
    assert required in series, f"/metrics missing {required}"
replayed = int(series["wal_replayed_records_total"])
assert replayed == 2, f"wal_replayed_records_total {replayed}, want 2 (the post-checkpoint tail)"
print("metrics:", " ".join(f"{k}={series[k]}" for k in ("wal_replayed_records_total", "wal_appended_records_total", "wal_segments")))'

echo "recovery smoke: OK"
